"""Wire protocol between the parallel coordinator and its zone workers.

Every request and reply is one framed byte string on a duplex
:class:`multiprocessing.connection.Connection` (``send_bytes`` /
``recv_bytes``).  The first byte is the message type; the payload layouts
below are plain ``struct`` packing over the existing compact codecs —
epoch frames from :mod:`repro.readers.codec`, event-message blocks from
:mod:`repro.events.codec`, and checkpoint blobs from
:mod:`repro.core.checkpoint` — so nothing on the per-epoch hot path goes
through :mod:`pickle`.

The protocol is strictly request/response per worker: the coordinator may
pipeline requests to different workers, but each worker consumes its pipe
in FIFO order and answers every request exactly once.  That invariant is
what lets the fan-in loop simply ``recv`` per zone in merge order.

Zones are addressed by a dense index assigned at startup (the sorted
position of the zone id), not by their string ids — 4 bytes instead of a
length-prefixed string on every message.
"""

from __future__ import annotations

import struct

from repro.events.codec import decode_stream, encode_stream
from repro.events.messages import EventMessage
from repro.model.objects import TagId

# ---------------------------------------------------------------------------
# message types (first byte of every frame)
# ---------------------------------------------------------------------------

MSG_INSTALL = 1  #: coordinator -> worker: full substrate state for a zone
MSG_EPOCH = 2  #: coordinator -> worker: the epoch's shares for all its zones
MSG_RELEASE = 3  #: coordinator -> worker: release migrating tags from a zone
MSG_ADOPT = 4  #: coordinator -> worker: adopt handoff records into a zone
MSG_QUERY = 5  #: coordinator -> worker: point query against a zone
MSG_STOP = 6  #: coordinator -> worker: shut down cleanly

MSG_OK = 64  #: worker -> coordinator: generic acknowledgement
MSG_EPOCH_RESULT = 65  #: worker -> coordinator: messages/departures/stats
MSG_RELEASE_RESULT = 66  #: worker -> coordinator: records + closing messages
MSG_QUERY_RESULT = 67  #: worker -> coordinator: one signed query answer
MSG_ERROR = 127  #: worker -> coordinator: traceback text (worker is dead)

# remote-transport envelope types (see :mod:`repro.distributed.remote`):
# on TCP, every request payload above travels inside a sequence-numbered
# envelope so retries can be detected and answered from the worker's
# last-reply cache; pings/hellos are supervision traffic, never cached
MSG_HELLO = 16  #: coordinator -> worker: identify + ask for registration
MSG_HELLO_ACK = 80  #: worker -> coordinator: worker name, pid, zone count
MSG_PING = 17  #: coordinator -> worker: lease heartbeat probe
MSG_PONG = 81  #: worker -> coordinator: heartbeat answer
MSG_REQUEST = 18  #: coordinator -> worker: seq-numbered wrapped request
MSG_REPLY = 82  #: worker -> coordinator: seq-numbered wrapped reply

#: queries routed by :data:`MSG_QUERY`
QUERY_LOCATION = 1
QUERY_CONTAINER = 2

#: sentinel for "no value" in signed slots (colors can be -1, so 0 and -1
#: are both taken; this mirrors the fast-checkpoint codec's convention)
NONE_SENTINEL = -(1 << 62)

_HEADER = struct.Struct("<BI")  # type, zone index
_QUERY_HEADER = struct.Struct("<BIBQ")  # type, zone index, query kind, tag key
_RELEASE_HEADER = struct.Struct("<BIqI")  # type, zone index, now, n tags
_ADOPT_HEADER = struct.Struct("<BIqI")  # type, zone index, now, n records
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")

#: flag bits on MSG_EPOCH
FLAG_CHECKPOINT = 1  #: checkpoint the zone after processing this epoch
FLAG_CHECKPOINT_PICKLE = 2  #: use the legacy pickle codec for that checkpoint

#: one handoff record (see ``Spire.release``): tag key, recent color,
#: seen_at, confirmed parent key (0 = none), confirmed_at, conflicts
_RECORD = struct.Struct("<QqqQqq")

#: epoch-result stats: busy seconds, checkpoint seconds
_RESULT_STATS = struct.Struct("<dd")


class WireError(RuntimeError):
    """Raised on malformed frames or a worker-reported failure."""


# ---------------------------------------------------------------------------
# byte-stream framing
# ---------------------------------------------------------------------------
#
# Pipes frame messages for free (``send_bytes``/``recv_bytes``); TCP does
# not.  The serving front-end (:mod:`repro.serving.protocol`) carries the
# same style of struct-packed payloads over sockets, so the length-prefix
# framing lives here next to the payload conventions it extends.

FRAME_HEADER = struct.Struct("<I")

#: refuse absurd frames rather than buffering an attacker-controlled length
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Length-prefix one payload for a byte-stream transport."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return FRAME_HEADER.pack(len(payload)) + payload


def encode_frames(payloads) -> bytes:
    """Length-prefix several payloads into one contiguous write.

    The serving tier's push path coalesces all of a connection's frames
    for an epoch into a single buffer so the fan-out to thousands of
    subscribers costs one ``write()`` per connection, not one per event.
    Decoding is unchanged — :class:`FrameDecoder` splits the frames back
    apart wherever the transport chunks them.
    """
    parts = []
    for payload in payloads:
        if len(payload) > MAX_FRAME_BYTES:
            raise WireError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
        parts.append(FRAME_HEADER.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


class FrameDecoder:
    """Incremental splitter for length-prefixed frames.

    ``feed`` absorbs whatever chunk the transport produced (frames may be
    split or coalesced arbitrarily) and returns the payloads completed so
    far, in order.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[bytes]:
        self._buffer.extend(chunk)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                return frames
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[FRAME_HEADER.size : end]))
            del self._buffer[:end]


def _expect(data: bytes, msg_type: int) -> None:
    if not data or data[0] != msg_type:
        got = data[0] if data else None
        if got == MSG_ERROR:
            raise WireError(f"worker failed:\n{data[1:].decode('utf-8', 'replace')}")
        raise WireError(f"expected message type {msg_type}, got {got}")


# ---------------------------------------------------------------------------
# handoff records
# ---------------------------------------------------------------------------


def encode_record(record: dict) -> bytes:
    """Pack one ``Spire.release`` handoff record."""
    tag: TagId = record["tag"]
    recent = record.get("recent_color")
    confirmed = record.get("confirmed_parent")
    return _RECORD.pack(
        tag.key(),
        NONE_SENTINEL if recent is None else recent,
        record.get("seen_at", 0),
        0 if confirmed is None else confirmed.key(),
        record.get("confirmed_at", -1),
        record.get("confirmed_conflicts", 0),
    )


def decode_record(data: bytes, offset: int = 0) -> tuple[dict, int]:
    """Unpack one handoff record; returns (record, next offset)."""
    tag_key, recent, seen_at, confirmed_key, confirmed_at, conflicts = _RECORD.unpack_from(
        data, offset
    )
    record = {
        "tag": TagId.from_key(tag_key),
        "recent_color": None if recent == NONE_SENTINEL else recent,
        "seen_at": seen_at,
        "confirmed_parent": None if confirmed_key == 0 else TagId.from_key(confirmed_key),
        "confirmed_at": confirmed_at,
        "confirmed_conflicts": conflicts,
    }
    return record, offset + _RECORD.size


# ---------------------------------------------------------------------------
# coordinator -> worker requests
# ---------------------------------------------------------------------------


#: install payload header after the common header: flags, zone id length,
#: metrics-seed length (the checkpoint blob is the remainder)
_INSTALL_EXTRA = struct.Struct("<BHI")

#: flag bits on MSG_INSTALL
FLAG_METRICS = 1  #: worker must attach a zone-labelled metric registry


def encode_install(
    zone_index: int,
    checkpoint: bytes,
    zone_id: str = "",
    metrics: bool = False,
    metrics_seed: bytes = b"",
) -> bytes:
    """Ship a zone substrate to its worker.

    ``metrics=True`` directs the worker to attach a registry labelled
    ``zone=zone_id`` and to snapshot it into every epoch reply;
    ``metrics_seed`` (a JSON snapshot) pre-loads the registry so counter
    totals survive recovery installs — checkpoints never carry
    registries themselves.
    """
    zone_bytes = zone_id.encode("utf-8")
    flags = FLAG_METRICS if metrics else 0
    return (
        _HEADER.pack(MSG_INSTALL, zone_index)
        + _INSTALL_EXTRA.pack(flags, len(zone_bytes), len(metrics_seed))
        + zone_bytes
        + metrics_seed
        + checkpoint
    )


def decode_install(data: bytes) -> tuple[int, bytes, str, bool, bytes]:
    """Returns (zone index, checkpoint, zone id, metrics enabled, seed)."""
    _, zone_index = _HEADER.unpack_from(data)
    offset = _HEADER.size
    flags, zone_len, seed_len = _INSTALL_EXTRA.unpack_from(data, offset)
    offset += _INSTALL_EXTRA.size
    zone_id = data[offset : offset + zone_len].decode("utf-8")
    offset += zone_len
    seed = data[offset : offset + seed_len]
    offset += seed_len
    return zone_index, data[offset:], zone_id, bool(flags & FLAG_METRICS), seed


_BATCH_ENTRY = struct.Struct("<IBI")  # zone index, flags, frame length


def encode_epoch_batch(entries: list[tuple[int, int, bytes]]) -> bytes:
    """One epoch for *all* of a worker's zones: ``(zone_index, flags,
    epoch frame)`` per entry.  A single pipe round-trip per worker per
    epoch instead of one per zone."""
    parts = [bytes([MSG_EPOCH]), _U32.pack(len(entries))]
    for zone_index, flags, frame in entries:
        parts.append(_BATCH_ENTRY.pack(zone_index, flags, len(frame)))
        parts.append(frame)
    return b"".join(parts)


def decode_epoch_batch(data: bytes) -> list[tuple[int, int, bytes]]:
    offset = 1
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    entries = []
    for _ in range(count):
        zone_index, flags, frame_len = _BATCH_ENTRY.unpack_from(data, offset)
        offset += _BATCH_ENTRY.size
        entries.append((zone_index, flags, data[offset : offset + frame_len]))
        offset += frame_len
    return entries


def encode_epoch_batch_result(results: list[tuple[int, bytes]]) -> bytes:
    """Per zone (request order): its :func:`encode_epoch_result` bytes."""
    parts = [bytes([MSG_EPOCH_RESULT]), _U32.pack(len(results))]
    for zone_index, result in results:
        parts.append(_U32.pack(zone_index))
        parts.append(_U32.pack(len(result)))
        parts.append(result)
    return b"".join(parts)


def decode_epoch_batch_result(data: bytes) -> list[tuple[int, bytes]]:
    _expect(data, MSG_EPOCH_RESULT)
    offset = 1
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    results = []
    for _ in range(count):
        (zone_index,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        (result_len,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        results.append((zone_index, data[offset : offset + result_len]))
        offset += result_len
    return results


def encode_release(zone_index: int, now: int, tags: list[TagId]) -> bytes:
    head = _RELEASE_HEADER.pack(MSG_RELEASE, zone_index, now, len(tags))
    return head + struct.pack(f"<{len(tags)}Q", *(tag.key() for tag in tags))


def decode_release(data: bytes) -> tuple[int, int, list[TagId]]:
    _, zone_index, now, n_tags = _RELEASE_HEADER.unpack_from(data)
    keys = struct.unpack_from(f"<{n_tags}Q", data, _RELEASE_HEADER.size)
    return zone_index, now, [TagId.from_key(key) for key in keys]


def encode_adopt(zone_index: int, now: int, records: list[bytes]) -> bytes:
    head = _ADOPT_HEADER.pack(MSG_ADOPT, zone_index, now, len(records))
    return head + b"".join(records)


def decode_adopt(data: bytes) -> tuple[int, int, list[dict]]:
    _, zone_index, now, n_records = _ADOPT_HEADER.unpack_from(data)
    records = []
    offset = _ADOPT_HEADER.size
    for _ in range(n_records):
        record, offset = decode_record(data, offset)
        records.append(record)
    return zone_index, now, records


def encode_query(zone_index: int, kind: int, tag: TagId) -> bytes:
    return _QUERY_HEADER.pack(MSG_QUERY, zone_index, kind, tag.key())


def decode_query(data: bytes) -> tuple[int, int, TagId]:
    _, zone_index, kind, tag_key = _QUERY_HEADER.unpack_from(data)
    return zone_index, kind, TagId.from_key(tag_key)


def encode_stop() -> bytes:
    return bytes([MSG_STOP])


# ---------------------------------------------------------------------------
# worker -> coordinator replies
# ---------------------------------------------------------------------------


def encode_ok() -> bytes:
    return bytes([MSG_OK])


def expect_ok(data: bytes) -> None:
    _expect(data, MSG_OK)


def encode_error(traceback_text: str) -> bytes:
    return bytes([MSG_ERROR]) + traceback_text.encode("utf-8")


def encode_epoch_result(
    messages: list[EventMessage],
    departed: list[TagId],
    busy_s: float,
    checkpoint_s: float,
    checkpoint: bytes | None,
    metrics: bytes | None = None,
) -> bytes:
    """``metrics`` is the zone registry's cumulative JSON snapshot (only
    present when the install enabled telemetry for the zone)."""
    message_block = encode_stream(messages)
    parts = [
        bytes([MSG_EPOCH_RESULT]),
        _U32.pack(len(message_block)),
        message_block,
        _U32.pack(len(departed)),
        struct.pack(f"<{len(departed)}Q", *(tag.key() for tag in departed)),
        _RESULT_STATS.pack(busy_s, checkpoint_s),
        _U32.pack(0 if checkpoint is None else len(checkpoint)),
        checkpoint or b"",
        _U32.pack(0 if metrics is None else len(metrics)),
        metrics or b"",
    ]
    return b"".join(parts)


def decode_epoch_result(
    data: bytes,
) -> tuple[list[EventMessage], list[TagId], float, float, bytes | None, bytes | None]:
    _expect(data, MSG_EPOCH_RESULT)
    offset = 1
    (n_bytes,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    messages = list(decode_stream(data[offset : offset + n_bytes]))
    offset += n_bytes
    (n_departed,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    departed_keys = struct.unpack_from(f"<{n_departed}Q", data, offset)
    offset += 8 * n_departed
    busy_s, checkpoint_s = _RESULT_STATS.unpack_from(data, offset)
    offset += _RESULT_STATS.size
    (ckpt_len,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    checkpoint = data[offset : offset + ckpt_len] if ckpt_len else None
    offset += ckpt_len
    (metrics_len,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    metrics = data[offset : offset + metrics_len] if metrics_len else None
    departed = [TagId.from_key(key) for key in departed_keys]
    return messages, departed, busy_s, checkpoint_s, checkpoint, metrics


def encode_release_result(releases: list[tuple[bytes, list[EventMessage]]]) -> bytes:
    """Per released tag (in request order): its record and closing messages."""
    parts = [bytes([MSG_RELEASE_RESULT]), _U32.pack(len(releases))]
    for record, closing in releases:
        block = encode_stream(closing)
        parts.append(record)
        parts.append(_U32.pack(len(block)))
        parts.append(block)
    return b"".join(parts)


def decode_release_result(data: bytes) -> list[tuple[bytes, list[EventMessage]]]:
    _expect(data, MSG_RELEASE_RESULT)
    offset = 1
    (count,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    releases: list[tuple[bytes, list[EventMessage]]] = []
    for _ in range(count):
        record = data[offset : offset + _RECORD.size]
        offset += _RECORD.size
        (block_len,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        closing = list(decode_stream(data[offset : offset + block_len]))
        offset += block_len
        releases.append((record, closing))
    return releases


def encode_query_result(value: int) -> bytes:
    return bytes([MSG_QUERY_RESULT]) + _I64.pack(value)


def decode_query_result(data: bytes) -> int:
    _expect(data, MSG_QUERY_RESULT)
    (value,) = _I64.unpack_from(data, 1)
    return value


# ---------------------------------------------------------------------------
# remote-transport envelope
# ---------------------------------------------------------------------------
#
# TCP can drop, duplicate, and delay frames (or rather: our retry layer
# can, when it resends after a timeout that the worker actually served).
# Every coordinator request therefore travels as MSG_REQUEST(seq, payload)
# and every worker answer as MSG_REPLY(seq, payload); the worker caches
# its recent replies by seq, so a retried request is answered from the
# cache instead of being applied twice.  Heartbeats (PING/PONG) and the
# connection handshake (HELLO/HELLO_ACK) use the same envelope but are
# idempotent by nature and never cached.

_ENVELOPE = struct.Struct("<BQ")  # type, sequence number


def encode_request(seq: int, payload: bytes) -> bytes:
    """Wrap one coordinator->worker request for the TCP transport."""
    return _ENVELOPE.pack(MSG_REQUEST, seq) + payload


def encode_reply(seq: int, payload: bytes) -> bytes:
    """Wrap one worker->coordinator reply for the TCP transport."""
    return _ENVELOPE.pack(MSG_REPLY, seq) + payload


def encode_ping(seq: int) -> bytes:
    return _ENVELOPE.pack(MSG_PING, seq)


def encode_pong(seq: int) -> bytes:
    return _ENVELOPE.pack(MSG_PONG, seq)


def encode_hello(name: str) -> bytes:
    """Coordinator's connection opener: identifies the supervisor."""
    return _ENVELOPE.pack(MSG_HELLO, 0) + name.encode("utf-8")


def encode_hello_ack(name: str, pid: int, zones: int) -> bytes:
    """Worker's handshake answer: its name, pid, and hosted-zone count.

    A non-zero zone count on a *fresh* connection tells the supervisor it
    reconnected to a worker that still holds state from before the
    network blip — resending pending requests is safe, reinstalling from
    scratch is not required.
    """
    body = struct.pack("<qI", pid, zones) + name.encode("utf-8")
    return _ENVELOPE.pack(MSG_HELLO_ACK, 0) + body


def decode_hello_ack(body: bytes) -> tuple[str, int, int]:
    """Returns (worker name, pid, hosted-zone count) from an ack body."""
    pid, zones = struct.unpack_from("<qI", body)
    return body[12:].decode("utf-8"), pid, zones


def decode_envelope(data: bytes) -> tuple[int, int, bytes]:
    """Split one transport frame into (envelope type, seq, body).

    The body of a MSG_REQUEST/MSG_REPLY is a complete inner message
    (first byte = message type, exactly as on the pipe transport).
    """
    if len(data) < _ENVELOPE.size:
        raise WireError(f"short envelope of {len(data)} bytes")
    msg_type, seq = _ENVELOPE.unpack_from(data)
    if msg_type not in (
        MSG_HELLO,
        MSG_HELLO_ACK,
        MSG_PING,
        MSG_PONG,
        MSG_REQUEST,
        MSG_REPLY,
    ):
        raise WireError(f"unknown envelope type {msg_type}")
    return msg_type, seq, data[_ENVELOPE.size :]

"""Containment audit: answering "what is packed inside what?" live.

The paper's introductory motivation: raw RFID streams do not reveal
whether flammable items are in a fire-proof container, or whether foods
with and without peanuts share a case.  SPIRE's containment inference makes
such audits possible over a live stream.

This example tags a subset of items as "peanut" items, streams the
warehouse trace through SPIRE, and continuously audits a policy: peanut
items and peanut-free items must never be estimated inside the same case.
Because the simulator packs cases homogeneously, every reported violation
is an inference error — so the audit doubles as a precision check.

Usage:  python examples/containment_audit.py
"""

from collections import defaultdict

from repro import (
    Deployment,
    InferenceParams,
    SimulationConfig,
    Spire,
    WarehouseSimulator,
)
from repro.model.objects import PackagingLevel


def main() -> None:
    config = SimulationConfig(
        duration=1200,
        pallet_period=200,
        cases_per_pallet_min=4,
        cases_per_pallet_max=4,
        items_per_case=6,
        read_rate=0.85,
        shelf_read_period=20,
        num_shelves=2,
        shelving_time_mean=300,
        shelving_time_jitter=60,
        seed=13,
    )
    sim = WarehouseSimulator(config).run()

    # domain knowledge: even item serials carry peanuts (the simulator
    # packs each case from a contiguous serial range, so real cases are
    # homogeneous only per-case -- here we make the label per-case instead)
    case_of_item = {}
    for snapshot in sim.truth.snapshots:
        for tag, container in snapshot.containers.items():
            if tag.level == PackagingLevel.ITEM:
                case_of_item.setdefault(tag, container)
    peanut_cases = {case for case in set(case_of_item.values()) if case.serial % 2 == 0}
    peanut_items = {t for t, c in case_of_item.items() if c in peanut_cases}
    print(f"{len(peanut_items)} peanut items in {len(peanut_cases)} peanut cases "
          f"(of {len(set(case_of_item.values()))} cases total)")

    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(deployment, InferenceParams(beta=0.4))

    audits = violations = 0
    first_violations = []
    for epoch_readings in sim.stream:
        spire.process_epoch(epoch_readings)
        if epoch_readings.epoch % 60 != 0:
            continue
        # audit: group current item estimates by estimated case
        contents = defaultdict(set)
        for tag in spire.estimates:
            if tag.level != PackagingLevel.ITEM:
                continue
            container = spire.container_of(tag)
            if container is not None and container.level == PackagingLevel.CASE:
                contents[container].add(tag)
        for case, items in contents.items():
            labels = {item in peanut_items for item in items}
            audits += 1
            if len(labels) > 1:
                violations += 1
                if len(first_violations) < 5:
                    first_violations.append((epoch_readings.epoch, case, sorted(items)[:4]))

    print(f"\naudited {audits} (case, minute) combinations")
    print(f"mixed-content alarms: {violations} "
          f"({violations / audits:.2%} — every alarm is an inference error here)")
    for epoch, case, items in first_violations:
        print(f"  t={epoch}: {case} estimated to hold a mixed set, e.g. {items}")
    if violations == 0:
        print("  no alarms: containment inference kept all cases homogeneous")


if __name__ == "__main__":
    main()

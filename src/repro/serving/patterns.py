"""Standing-query patterns (SASE-style) over the interpreted stream.

A pattern is a *stateful* predicate evaluated once per epoch against the
batch of event messages that epoch emitted, with the live
:class:`~repro.query.index.EventStreamIndex` available for point lookups.
Each subscription owns its own pattern instance, so per-pattern state
(which dwell stays already fired, which objects are missing) is private
to the subscriber.

Simple predicates (:class:`Tail`, :class:`ObjectWatch`,
:class:`PlaceWatch`) forward matching events; threshold predicates
(:class:`DwellExceeded`, :class:`MissingOverdue`) fire once per
qualifying episode; :class:`LeftWithoutContainer` is a compound
containment-anomaly pattern — *an object left location L while its
container stayed* — the canonical "item left the store without its case"
alert of the RFID monitoring literature.

Patterns evaluate against **level-1 semantics**: the engine expands a
level-2 stream first (see ``StandingQueryEngine(expand_level2=True)``),
so contained objects' location changes are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.messages import EventKind, EventMessage
from repro.model.objects import TagId
from repro.query.index import EventStreamIndex

# pattern kind codes (wire-stable; see repro.serving.protocol)
PATTERN_TAIL = 1
PATTERN_OBJECT = 2
PATTERN_PLACE = 3
PATTERN_DWELL = 4
PATTERN_MISSING = 5
PATTERN_LEFT_WITHOUT_CONTAINER = 6
PATTERN_SASE = 7  # compiled from pattern source text (repro.sase)

# notification kinds (wire-stable codes in repro.serving.protocol)
NOTIFY_EVENT = "event"
NOTIFY_OBJECT_EVENT = "object_event"
NOTIFY_PLACE_EVENT = "place_event"
NOTIFY_DWELL_EXCEEDED = "dwell_exceeded"
NOTIFY_MISSING_OVERDUE = "missing_overdue"
NOTIFY_LEFT_WITHOUT_CONTAINER = "left_without_container"
NOTIFY_SASE_MATCH = "sase_match"
NOTIFY_SUBSCRIPTION_EVICTED = "subscription_evicted"


@dataclass(frozen=True)
class Notification:
    """One match delivered to a subscriber.

    Attributes:
        kind: What fired (one of the ``NOTIFY_*`` constants).
        epoch: Epoch the match was detected at.
        obj: Subject object, when the match is object-scoped.
        place: Location color involved, when place-scoped.
        container: Container involved (containment events / anomalies).
        value: Pattern-specific scalar — dwell length or epochs missing
            for threshold patterns, the event-kind ordinal for tails.
        detail: Human-readable elaboration.
    """

    kind: str
    epoch: int
    obj: TagId | None = None
    place: int | None = None
    container: TagId | None = None
    value: int = 0
    detail: str = ""

    def __str__(self) -> str:
        parts = [f"[{self.kind} @ {self.epoch}]"]
        if self.obj is not None:
            parts.append(str(self.obj))
        if self.place is not None:
            parts.append(f"L{self.place}")
        if self.container is not None:
            parts.append(f"in {self.container}")
        if self.detail:
            parts.append(f"— {self.detail}")
        return " ".join(parts)


@dataclass(frozen=True)
class PatternSpec:
    """Wire-portable description of a pattern (see the subscribe op).

    Legacy catalogue kinds are described by the ``obj``/``place``/``k``
    fields; :data:`PATTERN_SASE` subscriptions carry the pattern
    ``source`` text instead and are compiled server-side.
    """

    kind: int
    obj: TagId | None = None
    place: int | None = None
    k: int = 0
    source: str | None = None


class Pattern:
    """Base class: evaluate one epoch's batch, emit notifications."""

    kind_code: int = 0

    def spec(self) -> PatternSpec:
        """The wire description a client would send to subscribe to this."""
        raise NotImplementedError

    def share_key(self) -> tuple | None:
        """Fan-out sharing identity, or ``None`` if unshareable.

        Subscriptions whose patterns answer the same share key join one
        :class:`~repro.serving.engine.SharedRuntime` and are evaluated
        once per epoch regardless of subscriber count.  The default key
        is the full wire spec plus the concrete class (so a hand-coded
        reference pattern never shares state with its compiled library
        twin); compiled patterns override this with their canonical
        (``unparse``-fixpoint) source.
        """
        spec = self.spec()
        return ("spec", type(self).__name__, spec.kind, spec.obj, spec.place, spec.k, spec.source)

    def prime(self, index: EventStreamIndex, epoch: int | None) -> None:
        """Adopt pre-subscription state from the live index (optional)."""

    def evaluate(
        self, epoch: int, messages: list[EventMessage], index: EventStreamIndex
    ) -> list[Notification]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.spec()})"


def _event_notification(kind: str, epoch: int, msg: EventMessage) -> Notification:
    return Notification(
        kind=kind,
        epoch=epoch,
        obj=msg.obj,
        place=msg.place,
        container=msg.container,
        value=list(EventKind).index(msg.kind),
        detail=msg.kind.value,
    )


@dataclass
class Tail(Pattern):
    """Live tail of the interpreted stream, optionally filtered.

    With no filter every event message becomes a notification; ``obj``
    and/or ``place`` restrict the tail to events mentioning them.
    """

    obj: TagId | None = None
    place: int | None = None
    kind_code = PATTERN_TAIL

    def spec(self) -> PatternSpec:
        return PatternSpec(PATTERN_TAIL, obj=self.obj, place=self.place)

    def evaluate(self, epoch, messages, index):
        out = []
        for msg in messages:
            if self.obj is not None and msg.obj != self.obj and msg.container != self.obj:
                continue
            if self.place is not None and msg.place != self.place:
                continue
            out.append(_event_notification(NOTIFY_EVENT, epoch, msg))
        return out


@dataclass
class ObjectWatch(Pattern):
    """Every event about one object — its live path/containment feed."""

    obj: TagId
    kind_code = PATTERN_OBJECT

    def spec(self) -> PatternSpec:
        return PatternSpec(PATTERN_OBJECT, obj=self.obj)

    def evaluate(self, epoch, messages, index):
        return [
            _event_notification(NOTIFY_OBJECT_EVENT, epoch, msg)
            for msg in messages
            if msg.obj == self.obj or msg.container == self.obj
        ]


@dataclass
class PlaceWatch(Pattern):
    """Every location event at one place (arrivals, departures, missing)."""

    place: int
    kind_code = PATTERN_PLACE

    def spec(self) -> PatternSpec:
        return PatternSpec(PATTERN_PLACE, place=self.place)

    def evaluate(self, epoch, messages, index):
        return [
            _event_notification(NOTIFY_PLACE_EVENT, epoch, msg)
            for msg in messages
            if msg.kind.is_location and msg.place == self.place
        ]


@dataclass
class DwellExceeded(Pattern):
    """An object has stayed at ``place`` for at least ``k`` epochs.

    Fires once per stay (per open interval), at the first epoch where
    ``epoch - Vs >= k``.  Subscribing mid-stream counts ongoing stays
    from their true start (the live index primes the open intervals).
    """

    place: int
    k: int
    kind_code = PATTERN_DWELL
    _active: dict[TagId, int] = field(default_factory=dict, repr=False)
    _fired: set[tuple[TagId, int]] = field(default_factory=set, repr=False)

    def spec(self) -> PatternSpec:
        return PatternSpec(PATTERN_DWELL, place=self.place, k=self.k)

    def prime(self, index, epoch):
        if epoch is None:
            return
        for obj in index.objects_at(self.place, epoch):
            for interval in index.path(obj):
                if interval.value == self.place and interval.contains(epoch):
                    self._active[obj] = interval.vs
                    break

    def evaluate(self, epoch, messages, index):
        for msg in messages:
            if msg.place != self.place:
                continue
            if msg.kind is EventKind.START_LOCATION:
                self._active[msg.obj] = msg.vs
            elif msg.kind in (EventKind.END_LOCATION, EventKind.MISSING):
                self._active.pop(msg.obj, None)
        out = []
        for obj, vs in self._active.items():
            if epoch - vs >= self.k and (obj, vs) not in self._fired:
                self._fired.add((obj, vs))
                out.append(
                    Notification(
                        kind=NOTIFY_DWELL_EXCEEDED,
                        epoch=epoch,
                        obj=obj,
                        place=self.place,
                        value=epoch - vs,
                        detail=f"at L{self.place} since {vs} (>= {self.k} epochs)",
                    )
                )
        return out


@dataclass
class MissingOverdue(Pattern):
    """An object has been in reported-missing state for ``k`` epochs.

    Starts the clock at each Missing report and cancels it when the
    object is located again; fires once per missing episode.
    """

    k: int
    kind_code = PATTERN_MISSING
    _missing: dict[TagId, tuple[int, int]] = field(default_factory=dict, repr=False)
    _fired: set[tuple[TagId, int]] = field(default_factory=set, repr=False)

    def spec(self) -> PatternSpec:
        return PatternSpec(PATTERN_MISSING, k=self.k)

    def prime(self, index, epoch):
        if epoch is None:
            return
        for obj in index.objects():
            if index.is_missing(obj, epoch):
                reports = index.missing_reports(obj)
                if reports:
                    place = index.location_of(obj, reports[-1] - 1)
                    self._missing[obj] = (reports[-1], -1 if place is None else place)

    def evaluate(self, epoch, messages, index):
        for msg in messages:
            if msg.kind is EventKind.MISSING:
                self._missing[msg.obj] = (msg.vs, msg.place if msg.place is not None else -1)
            elif msg.kind is EventKind.START_LOCATION:
                self._missing.pop(msg.obj, None)
        out = []
        for obj, (since, place) in self._missing.items():
            if epoch - since >= self.k and (obj, since) not in self._fired:
                self._fired.add((obj, since))
                out.append(
                    Notification(
                        kind=NOTIFY_MISSING_OVERDUE,
                        epoch=epoch,
                        obj=obj,
                        place=place if place >= 0 else None,
                        value=epoch - since,
                        detail=f"missing since {since} (>= {self.k} epochs)",
                    )
                )
        return out


@dataclass
class LeftWithoutContainer(Pattern):
    """Containment anomaly: an object left ``place`` but its container
    stayed behind.

    For every departure from ``place`` (EndLocation or Missing), the
    object's container *just before leaving* is looked up in the live
    index; if that container is still at ``place`` at the current epoch
    while the object is not, the separation is anomalous — the object
    moved without its case.
    """

    place: int
    kind_code = PATTERN_LEFT_WITHOUT_CONTAINER

    def spec(self) -> PatternSpec:
        return PatternSpec(PATTERN_LEFT_WITHOUT_CONTAINER, place=self.place)

    def evaluate(self, epoch, messages, index):
        out = []
        seen: set[TagId] = set()
        for msg in messages:
            if msg.place != self.place or msg.obj in seen:
                continue
            if msg.kind is EventKind.END_LOCATION:
                left_at = int(msg.ve)
            elif msg.kind is EventKind.MISSING:
                left_at = msg.vs
            else:
                continue
            before = max(msg.vs, left_at - 1)
            container = index.container_of(msg.obj, before)
            if container is None:
                container = index.container_of(msg.obj, left_at)
            if container is None:
                continue
            if (
                index.location_of(container, epoch) == self.place
                and index.location_of(msg.obj, epoch) != self.place
            ):
                seen.add(msg.obj)
                out.append(
                    Notification(
                        kind=NOTIFY_LEFT_WITHOUT_CONTAINER,
                        epoch=epoch,
                        obj=msg.obj,
                        place=self.place,
                        container=container,
                        detail=f"left L{self.place} at {left_at}; {container} stayed",
                    )
                )
        return out


def pattern_from_spec(spec: PatternSpec) -> Pattern:
    """Instantiate a fresh (stateless) pattern from its wire description.

    Legacy catalogue kinds route through their :mod:`repro.sase.library`
    definitions — the same matching logic, compiled from pattern source
    and pinned byte-for-byte against the hand-coded classes (which stay
    importable above for the equivalence tests).
    """
    from repro.sase import library  # deferred: repro.sase imports this module

    if spec.kind == PATTERN_TAIL:
        return library.tail(obj=spec.obj, place=spec.place)
    if spec.kind == PATTERN_OBJECT:
        if spec.obj is None:
            raise ValueError("object watch requires an object")
        return library.object_watch(obj=spec.obj)
    if spec.kind == PATTERN_PLACE:
        if spec.place is None:
            raise ValueError("place watch requires a place")
        return library.place_watch(place=spec.place)
    if spec.kind == PATTERN_DWELL:
        if spec.place is None or spec.k <= 0:
            raise ValueError("dwell pattern requires a place and k >= 1")
        return library.dwell_exceeded(place=spec.place, k=spec.k)
    if spec.kind == PATTERN_MISSING:
        if spec.k <= 0:
            raise ValueError("missing pattern requires k >= 1")
        return library.missing_overdue(k=spec.k)
    if spec.kind == PATTERN_LEFT_WITHOUT_CONTAINER:
        if spec.place is None:
            raise ValueError("containment-anomaly pattern requires a place")
        return library.left_without_container(place=spec.place)
    if spec.kind == PATTERN_SASE:
        if not spec.source:
            raise ValueError("sase pattern requires source text")
        from repro.sase import compile_pattern

        return compile_pattern(spec.source)
    raise ValueError(f"unknown pattern kind {spec.kind}")

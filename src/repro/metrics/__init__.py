"""Evaluation metrics for the Section VI experiments.

* :mod:`repro.metrics.accuracy` — per-epoch location/containment error
  rates against ground truth (Expts 1–4), with the scoring policies
  described in DESIGN.md;
* :mod:`repro.metrics.events` — event-stream precision/recall/F-measure
  against the compressed ground-truth stream (Expt 7);
* :mod:`repro.metrics.sizing` — compression ratios (Expt 8);
* :mod:`repro.metrics.delay` — anomaly-detection delay (Expt 4).
"""

from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy
from repro.metrics.events import EventMatch, f_measure, match_events
from repro.metrics.sizing import compression_ratio, location_only, containment_only
from repro.metrics.delay import DetectionReport, detection_delays

__all__ = [
    "AccuracyAccumulator",
    "ScoringPolicy",
    "EventMatch",
    "match_events",
    "f_measure",
    "compression_ratio",
    "location_only",
    "containment_only",
    "DetectionReport",
    "detection_delays",
]

"""Incremental NFA runtime: partitioned active instance stacks.

The runtime executes an :class:`~repro.sase.nfa.NfaProgram` against the
event stream one epoch at a time.  Active partial matches (*instances*)
live in per-partition stacks keyed on the inferred partition attribute;
an incoming event only ever touches the stack holding its own key, so
per-event work is bounded by that partition's population, not by the
total number of live instances (the SASE partitioning optimization).

Determinism contract (what the byte-equivalence tests pin):

* events are processed in batch order; within one event, **kills run
  before advances** (a negation observed in the same epoch as a
  would-be completion suppresses the match — matching the hand-coded
  dwell pattern, which dropped its armed entry before its fire loop);
* within a partition, instances advance oldest-first; match emission
  follows that order, with window-expiry matches emitted after all of
  the epoch's events, partitions in insertion order;
* a re-arming absence instance (fresh arrival while an episode is
  pending) **replaces in place**, keeping its partition's position in
  the stack — the dict-position semantics of the legacy catalogue;
* killed / expired / completed instances are removed eagerly and empty
  partitions deleted, so a partition recreated later moves to the end
  of the iteration order, exactly like a dict key popped and re-added.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.events.messages import INFINITY, EventKind, EventMessage
from repro.sase.ast import EvalContext, Expr
from repro.sase.nfa import NfaProgram

#: partition key used when the program has no partition attribute
#: (one shared stack) — a private sentinel no attribute value equals
_SHARED = object()

#: ``place`` used for synthesized Missing events whose origin place is
#: unknown at prime time (mirrors the legacy catalogue's sentinel)
UNKNOWN_PLACE = -1


class EventView:
    """An event message plus the epoch it arrived, with attribute access
    for predicate evaluation (``Attr.eval`` calls :meth:`attr`)."""

    __slots__ = ("msg", "epoch")

    def __init__(self, msg: EventMessage, epoch: int) -> None:
        self.msg = msg
        self.epoch = epoch

    def attr(self, name: str):
        msg = self.msg
        if name == "obj":
            return msg.obj
        if name == "place":
            return msg.place
        if name == "container":
            return msg.container
        if name == "vs":
            return msg.vs
        if name == "ve":
            return None if msg.ve == INFINITY else int(msg.ve)
        if name == "epoch":
            return self.epoch
        if name == "kind":
            return msg.kind.value
        if name == "left":
            # the derived departure time: when did the object stop being
            # where it was?  EndLocation closes at ve; a Missing report
            # pins the departure at its vs.  Other kinds have no notion
            # of leaving, so the attribute is None (poisoning predicates).
            if msg.kind is EventKind.END_LOCATION:
                return int(msg.ve)
            if msg.kind is EventKind.MISSING:
                return msg.vs
            return None
        raise AttributeError(name)  # pragma: no cover - parser validates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventView({self.msg}, epoch={self.epoch})"


class _Instance:
    """One partial match: the events bound so far and the NFA state."""

    __slots__ = ("state", "bindings", "anchor", "spent")

    def __init__(self, state: int, bindings: dict, anchor: int) -> None:
        self.state = state  # number of positive steps consumed
        self.bindings = bindings  # binding name -> EventView | list[EventView]
        self.anchor = anchor  # vs of the first bound event (window origin)
        #: an absence instance that already fired: it stays in its stack
        #: (preserving partition order for later re-arms, as the legacy
        #: catalogue's fired-set + retained dict entry did) but never
        #: fires again until re-armed
        self.spent = False

    def rearm(self, state: int, bindings: dict, anchor: int) -> None:
        self.state = state
        self.bindings = bindings
        self.anchor = anchor
        self.spent = False


@dataclass(frozen=True)
class Match:
    """A completed pattern match."""

    epoch: int  # the epoch the match fired
    bindings: dict  # binding name -> EventView | list[EventView]
    key: object  # partition key (None for unpartitioned programs)


@dataclass
class RuntimeStats:
    """Counters the serving tier surfaces as ``spire_sase_*`` metrics."""

    matches: int = 0
    kills: int = 0
    prunes: int = 0
    created: int = 0
    epochs: int = 0


class PatternRuntime:
    """Executes one compiled program over an epoch-ordered event stream."""

    def __init__(self, program: NfaProgram) -> None:
        self.program = program
        #: partition key -> stack (list) of live instances, oldest first
        self._partitions: dict[object, list[_Instance]] = {}
        self.stats = RuntimeStats()
        self._relevant = program.relevant_kinds
        self._total = len(program.steps)

    # -- introspection ---------------------------------------------------

    @property
    def active_instances(self) -> int:
        return sum(len(stack) for stack in self._partitions.values())

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    # -- the epoch loop --------------------------------------------------

    def process_epoch(self, epoch: int, messages, index=None) -> list[Match]:
        """Consume one epoch's batch and return the matches it produced,
        in deterministic order (see the module docstring)."""
        matches: list[Match] = []
        fired_keys: set | None = set() if self.program.once_per_epoch else None
        for msg in messages:
            if msg.kind not in self._relevant:
                continue
            self._apply(EventView(msg, epoch), epoch, index, matches, fired_keys)
        self._expire(epoch, index, matches, fired_keys)
        self.stats.epochs += 1
        return matches

    def _apply(
        self,
        view: EventView,
        epoch: int,
        index,
        matches: list[Match],
        fired_keys: set | None,
    ) -> None:
        key = self._key_for(view)
        stack = self._partitions.get(key)
        if stack:
            self._run_kills(stack, key, view, epoch, index)
            stack = self._partitions.get(key)
        if stack:
            self._run_advances(stack, key, view, epoch, index, matches, fired_keys)
        self._try_create(key, view, epoch, index, matches, fired_keys)

    # -- kill edges ------------------------------------------------------

    def _run_kills(self, stack, key, view, epoch, index) -> None:
        doomed: list[_Instance] = []
        for guard in self.program.guards:
            if view.msg.kind not in guard.kinds:
                continue
            for instance in stack:
                if instance.state != guard.guard_state or instance in doomed:
                    continue
                if self._eval(guard.preds, instance, guard.binding, view, epoch, index):
                    doomed.append(instance)
        for instance in doomed:
            self._remove(key, instance)
            self.stats.kills += 1

    # -- positive transitions --------------------------------------------

    def _run_advances(self, stack, key, view, epoch, index, matches, fired_keys) -> None:
        program = self.program
        window = program.window
        for instance in list(stack):
            state = instance.state
            step = program.steps[state] if state < self._total else None
            # 1) advance to the next step (skip-till-next-match: the first
            #    qualifying event is taken, non-matching events are skipped)
            if (
                step is not None
                and view.msg.kind in step.kinds
                and (window is None or view.epoch - instance.anchor <= window)
                and self._eval(step.preds, instance, step.binding, view, epoch, index)
            ):
                completing = state + 1 == self._total and not program.absence
                if completing and not step.kleene:
                    # completion of a non-Kleene final step also requires
                    # the fire-time predicates; a failing candidate is
                    # skipped, leaving the instance open for a later one
                    env = dict(instance.bindings)
                    env[step.binding] = view
                    if not self._eval_env(program.fire_preds, env, epoch, index):
                        continue
                instance.bindings[step.binding] = [view] if step.kleene else view
                instance.state = state + 1
                if instance.state == self._total and not program.absence:
                    self._emit(instance, key, epoch, index, matches, fired_keys)
                    if not step.kleene:
                        self._remove(key, instance)
                continue
            # 2) extend an open Kleene+ run with another qualifying event
            if state > 0:
                run_step = program.steps[state - 1]
                if (
                    run_step.kleene
                    and view.msg.kind in run_step.kinds
                    and (window is None or view.epoch - instance.anchor <= window)
                    and self._eval(
                        run_step.preds, instance, run_step.binding, view, epoch, index
                    )
                ):
                    instance.bindings[run_step.binding].append(view)
                    if state == self._total and not program.absence:
                        # a trailing Kleene+ re-fires on every extension
                        self._emit(instance, key, epoch, index, matches, fired_keys)

    def _try_create(self, key, view, epoch, index, matches, fired_keys) -> None:
        program = self.program
        step = program.steps[0]
        if view.msg.kind not in step.kinds:
            return
        env = {step.binding: view}
        if not self._eval_env(step.preds, env, epoch, index):
            return
        anchor = view.msg.vs
        if self._total == 1 and not program.absence:
            # single-element patterns complete immediately; nothing is stored
            # unless the only step is Kleene+ (the run stays open for
            # extensions)
            bindings = {step.binding: [view] if step.kleene else view}
            if self._eval_env(program.fire_preds, bindings, epoch, index):
                instance = _Instance(1, bindings, anchor)
                self._emit(instance, key, epoch, index, matches, fired_keys)
                if step.kleene:
                    self._store(key, instance)
            elif step.kleene:
                self._store(key, _Instance(1, bindings, anchor))
            return
        bindings = {step.binding: [view] if step.kleene else view}
        if program.replace_on_restart:
            stack = self._partitions.get(key)
            if stack:
                # re-arm the pending episode in place: keeps the
                # partition's position in the stack (dict semantics of
                # the legacy catalogue)
                stack[0].rearm(1, bindings, anchor)
                return
        self._store(key, _Instance(1, bindings, anchor))

    # -- window expiry ---------------------------------------------------

    def _expire(self, epoch, index, matches, fired_keys) -> None:
        program = self.program
        window = program.window
        if window is None:
            return
        for key in list(self._partitions):
            stack = self._partitions.get(key)
            if stack is None:
                continue
            for instance in list(stack):
                age = epoch - instance.anchor
                if program.absence and instance.state == self._total:
                    if instance.spent or age < window:
                        continue
                    # the window elapsed without the negated event: fire
                    if self._eval_env(
                        program.fire_preds, instance.bindings, epoch, index
                    ):
                        self._emit(instance, key, epoch, index, matches, fired_keys)
                    if program.replace_on_restart:
                        # stay in the stack, spent: a later re-arm keeps
                        # the partition's iteration position (the legacy
                        # catalogue retained fired entries the same way)
                        instance.spent = True
                    else:
                        self._remove(key, instance)
                elif age > window:
                    self._remove(key, instance)
                    self.stats.prunes += 1

    # -- plumbing --------------------------------------------------------

    def _key_for(self, view: EventView):
        attr = self.program.partition_attr
        if attr is None:
            return _SHARED
        return view.attr(attr)

    def _store(self, key, instance: _Instance) -> None:
        self._partitions.setdefault(key, []).append(instance)
        self.stats.created += 1

    def _remove(self, key, instance: _Instance) -> None:
        stack = self._partitions.get(key)
        if stack is None:
            return
        try:
            stack.remove(instance)
        except ValueError:  # pragma: no cover - defensive
            return
        if not stack:
            del self._partitions[key]

    def _emit(self, instance, key, epoch, index, matches, fired_keys) -> None:
        if fired_keys is not None:
            if key in fired_keys:
                return
            fired_keys.add(key)
        out_key = None if key is _SHARED else key
        # snapshot Kleene runs: the live list keeps growing after emission
        bindings = {
            name: list(value) if isinstance(value, list) else value
            for name, value in instance.bindings.items()
        }
        matches.append(Match(epoch=epoch, bindings=bindings, key=out_key))
        self.stats.matches += 1

    def _eval(self, preds, instance, binding, view, epoch, index) -> bool:
        if not preds:
            return True
        env = dict(instance.bindings)
        env[binding] = view
        return self._eval_env(preds, env, epoch, index)

    @staticmethod
    def _eval_env(preds: tuple[Expr, ...], env: dict, epoch: int, index) -> bool:
        if not preds:
            return True
        ctx = EvalContext(env, epoch, index)
        return all(pred.eval(ctx) for pred in preds)

    # -- priming from an index -------------------------------------------

    def prime(self, index, epoch: int | None) -> None:
        """Seed instances from state already in force at ``epoch``.

        A subscription arriving mid-stream must not miss episodes that
        began before it: open location/containment intervals and live
        missing states are replayed as synthetic start events carrying
        their true ``vs``, then run through the normal transition logic
        with match emission suppressed.  Single-element patterns without
        a trailing negation need no arming, so priming is a no-op there
        (as it was for the legacy immediate patterns).
        """
        if epoch is None or index is None:
            return
        if self._total == 1 and not self.program.absence and not self.program.steps[0].kleene:
            return
        synthetic: list[EventMessage] = []
        for obj in index.objects():
            for interval in index.path(obj):
                if interval.contains(epoch):
                    synthetic.append(
                        EventMessage(
                            EventKind.START_LOCATION,
                            obj,
                            interval.vs,
                            INFINITY,
                            place=interval.value,
                        )
                    )
            for interval in index.containment_history(obj):
                if interval.contains(epoch):
                    synthetic.append(
                        EventMessage(
                            EventKind.START_CONTAINMENT,
                            obj,
                            interval.vs,
                            INFINITY,
                            container=interval.value,
                        )
                    )
            if index.is_missing(obj, epoch):
                reports = index.missing_reports(obj)
                if reports:
                    since = reports[-1]
                    place = index.location_of(obj, since - 1)
                    synthetic.append(
                        EventMessage(
                            EventKind.MISSING,
                            obj,
                            since,
                            since,
                            place=place if place is not None else UNKNOWN_PLACE,
                        )
                    )
        sink: list[Match] = []
        fired: set | None = set() if self.program.once_per_epoch else None
        emitted = self.stats.matches
        created = self.stats.created
        for msg in synthetic:
            if msg.kind not in self._relevant:
                continue
            view = EventView(msg, epoch)
            key = self._key_for(view)
            stack = self._partitions.get(key)
            if stack:
                self._run_advances(stack, key, view, epoch, index, sink, fired)
            self._try_create(key, view, epoch, index, sink, fired)
        # priming arms state; it never reports matches or skews counters
        self.stats.matches = emitted
        self.stats.created = created

"""Zone coordinator: routing, handoff, and output merging.

A :class:`Zone` owns a disjoint subset of the site's readers and runs its
own substrate; the :class:`Coordinator` is the only component that sees
the whole site:

* **routing** — each epoch's (globally deduplicated) readings are split by
  reader ownership and fed to the owning zones;
* **ownership & handoff** — every tag is owned by the zone that observed
  it most recently; when a tag shows up in a different zone, the old owner
  *releases* it (closing its output intervals and exporting its
  observation memory and confirmations) and the new owner *adopts* it, so
  containment knowledge survives the migration;
* **merging** — the release messages and the zones' per-epoch outputs are
  concatenated (releases first) into one stream that stays well-formed per
  object, because an object's messages always come from its current owner
  and the old owner's intervals are closed before the new owner opens any.

Zones are plain in-process objects here; the coordinator's contract (pure
message passing: readings in, handoff records and event messages out) is
what a networked deployment would serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.events.messages import EventMessage
from repro.model.locations import LocationRegistry
from repro.model.objects import TagId
from repro.readers.dedup import Deduplicator
from repro.readers.reader import Reader
from repro.readers.stream import EpochReadings

#: portable knowledge exported at handoff (see ``Spire.release``)
HandoffRecord = dict


@dataclass
class Zone:
    """One partition of the site: a named substrate over some readers."""

    zone_id: str
    spire: Spire
    reader_ids: frozenset[int]

    @classmethod
    def build(
        cls,
        zone_id: str,
        readers: Iterable[Reader],
        registry: LocationRegistry | None = None,
        params: InferenceParams | None = None,
        compression_level: int = 2,
    ) -> "Zone":
        readers = list(readers)
        deployment = Deployment.from_readers(readers, registry)
        return cls(
            zone_id=zone_id,
            spire=Spire(deployment, params, compression_level=compression_level),
            reader_ids=frozenset(r.reader_id for r in readers),
        )


@dataclass
class EpochResult:
    """What one coordinated epoch produced."""

    epoch: int
    messages: list[EventMessage]
    handoffs: list[tuple[TagId, str, str]] = field(default_factory=list)  # (tag, from, to)


class Coordinator:
    """Routes readings to zones and keeps the global view consistent."""

    def __init__(self, zones: Iterable[Zone]) -> None:
        self.zones: dict[str, Zone] = {}
        self._zone_of_reader: dict[int, str] = {}
        for zone in zones:
            if zone.zone_id in self.zones:
                raise ValueError(f"duplicate zone id {zone.zone_id!r}")
            self.zones[zone.zone_id] = zone
            for reader_id in zone.reader_ids:
                if reader_id in self._zone_of_reader:
                    raise ValueError(
                        f"reader {reader_id} assigned to both "
                        f"{self._zone_of_reader[reader_id]!r} and {zone.zone_id!r}"
                    )
                self._zone_of_reader[reader_id] = zone.zone_id
        if not self.zones:
            raise ValueError("a coordinator needs at least one zone")
        self._owner: dict[TagId, str] = {}
        self._dedup = Deduplicator()

    # ------------------------------------------------------------------

    def process_epoch(self, readings: EpochReadings) -> EpochResult:
        """Coordinate one epoch across all zones."""
        now = readings.epoch
        clean = self._dedup.process(readings)

        # split by owning zone
        per_zone: dict[str, EpochReadings] = {
            zone_id: EpochReadings(epoch=now) for zone_id in self.zones
        }
        for reader_id, tags in clean.by_reader.items():
            zone_id = self._zone_of_reader.get(reader_id)
            if zone_id is None:
                raise KeyError(f"reading from reader {reader_id} owned by no zone")
            per_zone[zone_id].add(reader_id, tags)

        # migrations: a tag observed in a zone that does not own it
        result = EpochResult(epoch=now, messages=[])
        for zone_id, zone_readings in per_zone.items():
            for tag in zone_readings.tags_seen():
                owner = self._owner.get(tag)
                if owner is None:
                    self._owner[tag] = zone_id
                elif owner != zone_id:
                    record, closing = self.zones[owner].spire.release(tag, now)
                    result.messages.extend(closing)
                    self.zones[zone_id].spire.adopt(record, now)
                    self._owner[tag] = zone_id
                    result.handoffs.append((tag, owner, zone_id))

        # each zone processes its share; outputs are concatenated in zone
        # order after the handoff closures
        for zone_id in sorted(per_zone):
            output = self.zones[zone_id].spire.process_epoch(per_zone[zone_id])
            result.messages.extend(output.messages)
            for tag in output.departed:
                self._owner.pop(tag, None)
        return result

    def run(self, stream: Iterable[EpochReadings]) -> list[EpochResult]:
        """Coordinate a whole stream."""
        return [self.process_epoch(readings) for readings in stream]

    # ------------------------------------------------------------------
    # global queries
    # ------------------------------------------------------------------

    def owner_of(self, tag: TagId) -> str | None:
        """Zone currently owning ``tag`` (``None`` if never observed)."""
        return self._owner.get(tag)

    def location_of(self, tag: TagId) -> int:
        """Site-wide location query: delegated to the owning zone."""
        owner = self._owner.get(tag)
        if owner is None:
            from repro.model.locations import UNKNOWN_COLOR

            return UNKNOWN_COLOR
        return self.zones[owner].spire.location_of(tag)

    def container_of(self, tag: TagId) -> TagId | None:
        """Site-wide containment query: delegated to the owning zone."""
        owner = self._owner.get(tag)
        if owner is None:
            return None
        return self.zones[owner].spire.container_of(tag)

    @property
    def tracked_objects(self) -> int:
        return len(self._owner)


def partition_by_location(
    readers: Iterable[Reader],
    assignment: Mapping[str, Iterable[str]],
    registry: LocationRegistry | None = None,
    params: InferenceParams | None = None,
    compression_level: int = 2,
) -> list[Zone]:
    """Build zones from a ``zone id -> location names`` assignment.

    Every reader must land in exactly one zone; raises ``ValueError`` for
    unassigned or doubly-assigned locations.
    """
    readers = list(readers)
    location_to_zone: dict[str, str] = {}
    for zone_id, names in assignment.items():
        for name in names:
            if name in location_to_zone:
                raise ValueError(f"location {name!r} assigned to two zones")
            location_to_zone[name] = zone_id

    by_zone: dict[str, list[Reader]] = {zone_id: [] for zone_id in assignment}
    for reader in readers:
        zone_id = location_to_zone.get(reader.location.name)
        if zone_id is None:
            raise ValueError(f"reader at {reader.location.name!r} assigned to no zone")
        by_zone[zone_id].append(reader)

    return [
        Zone.build(zone_id, zone_readers, registry, params, compression_level)
        for zone_id, zone_readers in by_zone.items()
        if zone_readers
    ]

"""Correlated read-loss model (Gilbert–Elliott burst channel).

The i.i.d. Bernoulli loss model misses a physical reality the paper's
references describe: a tag occluded by a metal object ([10]) or starved by
tag contention ([11]) stays unreadable for a *stretch* of interrogations.
:class:`BurstLossModel` implements the classic two-state Gilbert–Elliott
channel per (reader, tag) pair:

* in the GOOD state the tag is read with probability ``good_read_rate``
  (near 1);
* in the BAD state it is read with probability ``bad_read_rate`` (near 0);
* the chain switches states with small per-interrogation probabilities,
  giving geometrically distributed burst lengths.

``from_average`` builds a channel with a target *average* read rate and a
mean bad-burst length, so experiments can hold the headline read rate fixed
while sweeping how bursty the losses are — isolating what correlation does
to SPIRE's history-based inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.objects import TagId


@dataclass
class BurstLossModel:
    """Per-(reader, tag) Gilbert–Elliott loss channel.

    Attributes:
        good_read_rate: Detection probability in the GOOD state.
        bad_read_rate: Detection probability in the BAD state.
        p_good_to_bad: Per-interrogation probability of entering a burst.
        p_bad_to_good: Per-interrogation probability of leaving a burst
            (mean burst length = 1 / p_bad_to_good interrogations).
    """

    good_read_rate: float = 0.98
    bad_read_rate: float = 0.05
    p_good_to_bad: float = 0.02
    p_bad_to_good: float = 0.25
    _bad: set[tuple[int, TagId]] = field(default_factory=set, repr=False)
    _seen: set[tuple[int, TagId]] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        for name in ("good_read_rate", "bad_read_rate", "p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.good_read_rate < self.bad_read_rate:
            raise ValueError("good_read_rate must be >= bad_read_rate")
        if self.p_bad_to_good <= 0.0:
            raise ValueError("p_bad_to_good must be positive or bursts never end")

    @classmethod
    def from_average(
        cls,
        average_read_rate: float,
        mean_burst: float = 4.0,
        bad_read_rate: float = 0.05,
        good_read_rate: float = 0.98,
    ) -> "BurstLossModel":
        """Channel with a chosen long-run average read rate.

        The stationary GOOD-state share ``g`` must satisfy
        ``g * good + (1 - g) * bad = average``; with the mean burst fixing
        ``p_bad_to_good = 1/mean_burst``, that pins ``p_good_to_bad``.
        """
        if not bad_read_rate <= average_read_rate <= good_read_rate:
            raise ValueError(
                f"average read rate {average_read_rate} must lie between the "
                f"bad ({bad_read_rate}) and good ({good_read_rate}) state rates"
            )
        if mean_burst < 1.0:
            raise ValueError(f"mean_burst must be >= 1 interrogation, got {mean_burst}")
        good_share = (average_read_rate - bad_read_rate) / (good_read_rate - bad_read_rate)
        p_bad_to_good = 1.0 / mean_burst
        if good_share >= 1.0:
            p_good_to_bad = 0.0
        else:
            # stationarity: g * p_gb = (1 - g) * p_bg
            p_good_to_bad = (1.0 - good_share) * p_bad_to_good / max(good_share, 1e-9)
        return cls(
            good_read_rate=good_read_rate,
            bad_read_rate=bad_read_rate,
            p_good_to_bad=min(1.0, p_good_to_bad),
            p_bad_to_good=p_bad_to_good,
        )

    @property
    def average_read_rate(self) -> float:
        """Long-run detection probability of the channel."""
        denominator = self.p_good_to_bad + self.p_bad_to_good
        good_share = self.p_bad_to_good / denominator if denominator > 0 else 1.0
        return good_share * self.good_read_rate + (1 - good_share) * self.bad_read_rate

    # ------------------------------------------------------------------

    def observe(
        self,
        reader_id: int,
        present: list[TagId],
        rng: np.random.Generator,
    ) -> list[TagId]:
        """One interrogation over ``present`` tags with burst-correlated loss."""
        if not present:
            return []
        out = []
        denominator = self.p_good_to_bad + self.p_bad_to_good
        stationary_bad = self.p_good_to_bad / denominator if denominator > 0 else 0.0
        for tag in present:
            key = (reader_id, tag)
            if key not in self._seen:
                # start each channel in its stationary state, so a trace's
                # average rate is unbiased from the first interrogation
                self._seen.add(key)
                if rng.random() < stationary_bad:
                    self._bad.add(key)
            in_bad = key in self._bad
            # state transition first, then the read attempt in the new state
            if in_bad:
                if rng.random() < self.p_bad_to_good:
                    self._bad.discard(key)
                    in_bad = False
            else:
                if rng.random() < self.p_good_to_bad:
                    self._bad.add(key)
                    in_bad = True
            rate = self.bad_read_rate if in_bad else self.good_read_rate
            if rng.random() < rate:
                out.append(tag)
        return out

    def forget(self, tag: TagId) -> None:
        """Drop channel state for a departed tag."""
        self._bad = {key for key in self._bad if key[1] != tag}
        self._seen = {key for key in self._seen if key[1] != tag}

    @property
    def tags_in_burst(self) -> int:
        """Number of (reader, tag) channels currently in the BAD state."""
        return len(self._bad)

"""Fan-out tier coverage: shared runtimes, tiered backpressure, protocol
v2 batched frames, subscription persistence, and the redesigned
subscription API.

Pins the load-bearing properties of the 10k-subscriber serving redesign:

* **Shared fan-out equivalence** — N duplicate subscribers through one
  shared runtime receive notifications *byte-identical* (under the wire
  codec) to N independent engines, while the pattern is evaluated once
  per epoch instead of N times.
* **Tiered backpressure** — drop-oldest with a warning first; after
  ``evict_after`` consecutive overflowing publishes the subscriber is
  evicted with a quarantine warning and an eviction notice (durable —
  restored — subscriptions are exempt).
* **Batched event frames** — ``FRAME_EVENT_BATCH`` survives arbitrary
  transport chunk boundaries and duplicate-subscriber grouping.
* **Persistence** — ``dump_subscriptions``/``restore_subscriptions``
  round-trips ids and canonical pattern text, re-coalescing duplicates
  into shared runtimes.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.wire import FrameDecoder, encode_frame, encode_frames
from repro.events.messages import missing, start_containment, start_location
from repro.faults.warnings import WarningKind
from repro.sase import compile_pattern
from repro.serving import protocol
from repro.serving.engine import StandingQueryEngine, describe_pattern
from repro.serving.patterns import (
    NOTIFY_SUBSCRIPTION_EVICTED,
    PATTERN_PLACE,
    PATTERN_TAIL,
    Notification,
    PatternSpec,
    PlaceWatch,
    Tail,
    pattern_from_spec,
)

from tests.conftest import case, item

L1, L2, L3 = 0, 1, 2


def _epochs(n: int):
    """n epochs with enough traffic that a place watch fires every epoch."""
    out = []
    for t in range(n):
        out.append(
            (t, [start_location(item(1 + t), L1, t),
                 start_location(case(1 + t), L2, t)])
        )
    return out


# ---------------------------------------------------------------------------
# shared fan-out tree
# ---------------------------------------------------------------------------


class TestSharedFanout:
    def test_duplicate_specs_share_one_runtime(self):
        engine = StandingQueryEngine()
        subs = [
            engine.subscribe(pattern_from_spec(PatternSpec(PATTERN_PLACE, place=L1)))
            for _ in range(5)
        ]
        assert len(engine.runtimes) == 1
        assert len({s.sub_id for s in subs}) == 5
        engine.publish(0, [start_location(item(1), L1, 0)])
        assert engine.stats.pattern_evaluations == 1
        for sub in subs:
            assert len(engine.drain(sub.sub_id)) == 1

    def test_textual_variants_share_via_canonical_source(self):
        engine = StandingQueryEngine()
        a = engine.subscribe(
            compile_pattern("PATTERN SEQ(arrival a) WHERE a.place == 0")
        )
        b = engine.subscribe(
            compile_pattern("PATTERN   SEQ( arrival   a )\nWHERE a.place==0")
        )
        assert len(engine.runtimes) == 1
        assert a.runtime is b.runtime

    def test_distinct_patterns_do_not_share(self):
        engine = StandingQueryEngine()
        engine.subscribe(pattern_from_spec(PatternSpec(PATTERN_PLACE, place=L1)))
        engine.subscribe(pattern_from_spec(PatternSpec(PATTERN_PLACE, place=L2)))
        engine.subscribe(Tail())
        assert len(engine.runtimes) == 3

    def test_unsubscribe_retires_empty_runtime(self):
        engine = StandingQueryEngine()
        a = engine.subscribe(PlaceWatch(place=L1))
        b = engine.subscribe(PlaceWatch(place=L1))
        assert len(engine.runtimes) == 1
        engine.unsubscribe(a.sub_id)
        assert len(engine.runtimes) == 1
        engine.unsubscribe(b.sub_id)
        assert len(engine.runtimes) == 0

    def test_shared_matches_independent_engines_byte_for_byte(self):
        """N dups on one engine == N single-subscriber engines, under the
        wire codec — the shared tree must be an invisible optimization."""
        dups = 4
        shared = StandingQueryEngine()
        shared_subs = [
            shared.subscribe(pattern_from_spec(PatternSpec(PATTERN_PLACE, place=L1)))
            for _ in range(dups)
        ]
        solo = [StandingQueryEngine() for _ in range(dups)]
        solo_subs = [
            e.subscribe(pattern_from_spec(PatternSpec(PATTERN_PLACE, place=L1)))
            for e in solo
        ]
        for epoch, batch in _epochs(6):
            shared.publish(epoch, batch)
            for e in solo:
                e.publish(epoch, batch)
        blobs = []
        for d in range(dups):
            blobs.append(
                b"".join(protocol.encode_notification(n)
                         for n in shared.drain(shared_subs[d].sub_id))
            )
            solo_blob = b"".join(
                protocol.encode_notification(n)
                for n in solo[d].drain(solo_subs[d].sub_id)
            )
            assert blobs[d] == solo_blob
        assert len(set(blobs)) == 1 and blobs[0]
        assert shared.stats.pattern_evaluations == 6
        assert sum(e.stats.pattern_evaluations for e in solo) == 6 * dups

    def test_late_joiner_gets_events_from_join_onward(self):
        engine = StandingQueryEngine()
        early = engine.subscribe(PlaceWatch(place=L1))
        engine.publish(0, [start_location(item(1), L1, 0)])
        late = engine.subscribe(PlaceWatch(place=L1))
        assert early.runtime is late.runtime
        engine.publish(1, [start_location(item(2), L1, 1)])
        assert len(engine.drain(early.sub_id)) == 2
        assert len(engine.drain(late.sub_id)) == 1


# ---------------------------------------------------------------------------
# tiered backpressure: drop-oldest -> eviction
# ---------------------------------------------------------------------------


class TestTieredBackpressure:
    def _overflowing_engine(self, evict_after: int):
        engine = StandingQueryEngine(evict_after=evict_after)
        sub = engine.subscribe(PlaceWatch(place=L1), max_queue=1)
        return engine, sub

    def test_slow_consumer_evicted_after_streak(self):
        engine, sub = self._overflowing_engine(evict_after=3)
        # queue of 1 + two matches per epoch -> every publish overflows
        for t in range(3):
            engine.publish(t, [start_location(item(1 + 2 * t), L1, t),
                               start_location(item(2 + 2 * t), L1, t)])
            if t < 2:
                assert sub.sub_id in engine.subscriptions
        assert sub.sub_id not in engine.subscriptions
        assert engine.stats.subscriptions_evicted == 1
        assert len(engine.runtimes) == 0
        [(evicted_id, note)] = engine.evicted
        assert evicted_id == sub.sub_id
        assert note.kind == NOTIFY_SUBSCRIPTION_EVICTED
        assert "evicted after 3 consecutive overflowing epochs" in note.detail
        assert describe_pattern(sub.pattern) in note.detail

    def test_clean_push_resets_the_streak(self):
        engine, sub = self._overflowing_engine(evict_after=2)
        overflow = [start_location(item(1), L1, 0), start_location(item(2), L1, 0)]
        engine.publish(0, overflow)
        assert sub.overflow_streak == 1
        engine.drain(sub.sub_id)
        engine.publish(1, [start_location(item(3), L1, 1)])  # fits: streak resets
        assert sub.overflow_streak == 0
        engine.publish(2, overflow)
        assert sub.sub_id in engine.subscriptions  # streak restarted at 1

    def test_eviction_disabled_by_default(self):
        engine, sub = self._overflowing_engine(evict_after=0)
        overflow = [start_location(item(1), L1, 0), start_location(item(2), L1, 0)]
        for t in range(10):
            engine.publish(t, overflow)
        assert sub.sub_id in engine.subscriptions
        assert engine.stats.subscriptions_evicted == 0

    def test_durable_subscriptions_are_exempt(self):
        engine = StandingQueryEngine(evict_after=1)
        sub = engine.subscribe(PlaceWatch(place=L1), max_queue=1)
        data = engine.dump_subscriptions()
        restored = StandingQueryEngine(evict_after=1)
        assert restored.restore_subscriptions(data) == 1
        overflow = [start_location(item(1), L1, 0), start_location(item(2), L1, 0)]
        for t in range(5):
            restored.publish(t, overflow)
        assert sub.sub_id in restored.subscriptions  # durable: never evicted

    def test_overflow_and_eviction_warnings_name_the_pattern(self):
        engine = StandingQueryEngine(evict_after=1)
        sub = engine.subscribe(PlaceWatch(place=L1), max_queue=1)
        canonical = describe_pattern(sub.pattern)
        engine.publish(
            0, [start_location(item(1), L1, 0), start_location(item(2), L1, 0)]
        )
        kinds = [w.kind for w in engine.quarantine.warnings]
        assert WarningKind.SUBSCRIPTION_OVERFLOW in kinds
        assert WarningKind.SUBSCRIPTION_EVICTED in kinds
        for warning in engine.quarantine.warnings:
            assert canonical in warning.detail
            assert "1 subscriber(s)" in warning.detail


# ---------------------------------------------------------------------------
# protocol v2: batched event frames + feature negotiation
# ---------------------------------------------------------------------------


def _sample_groups():
    notes_a = [
        Notification(kind="place_event", epoch=7, obj=item(1), place=L1),
        Notification(kind="dwell_exceeded", epoch=7, obj=item(1), place=L1,
                     value=12, detail="dwelling"),
    ]
    notes_b = [
        Notification(kind="missing_overdue", epoch=7, obj=case(2), value=9),
    ]
    return [([3, 5, 11], notes_a), ([8], notes_b), ([2, 4], [])]


class TestEventBatchCodec:
    def test_round_trip(self):
        payload = protocol.encode_event_batch(7, _sample_groups())
        epoch, groups = protocol.decode_event_batch(payload)
        assert epoch == 7
        assert [ids for ids, _ in groups] == [[3, 5, 11], [8], [2, 4]]
        assert groups[0][1][0].obj == item(1)
        assert groups[0][1][1].value == 12
        assert groups[1][1][0].kind == "missing_overdue"
        assert groups[2][1] == []

    def test_notes_shared_within_a_group(self):
        epoch, groups = protocol.decode_event_batch(
            protocol.encode_event_batch(3, _sample_groups())
        )
        ids, notes = groups[0]
        # one decode per group: every member sub id sees the same objects
        assert len(ids) == 3 and len(notes) == 2

    def test_batch_equals_singles(self):
        """The batched codec must carry exactly what per-sub FRAME_EVENT
        frames would have carried."""
        groups = _sample_groups()
        payload = protocol.encode_event_batch(7, groups)
        _, decoded = protocol.decode_event_batch(payload)
        for (ids, notes), (dids, dnotes) in zip(groups, decoded):
            assert ids == dids
            for want, got in zip(notes, dnotes):
                for sub_id in ids:
                    single = protocol.decode_event(
                        protocol.encode_event(sub_id, want)
                    )
                    assert single == (sub_id, got)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 16, 64, 4096])
    def test_framed_batch_survives_fixed_chunking(self, chunk_size):
        frames = [
            encode_frame(protocol.encode_event_batch(e, _sample_groups()))
            for e in range(4)
        ]
        data = b"".join(frames)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(data), chunk_size):
            out.extend(decoder.feed(data[start:start + chunk_size]))
        assert decoder.pending == 0
        assert len(out) == 4
        for e, payload in enumerate(out):
            epoch, groups = protocol.decode_event_batch(payload)
            assert epoch == e and len(groups) == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=97), min_size=1, max_size=40))
    def test_framed_batch_survives_arbitrary_chunking(self, sizes):
        data = b"".join(
            encode_frame(protocol.encode_event_batch(e, _sample_groups()))
            for e in range(3)
        )
        decoder = FrameDecoder()
        out, pos, i = [], 0, 0
        while pos < len(data):
            step = sizes[i % len(sizes)]
            out.extend(decoder.feed(data[pos:pos + step]))
            pos += step
            i += 1
        assert [protocol.decode_event_batch(p)[0] for p in out] == [0, 1, 2]

    def test_encode_frames_coalesces(self):
        payloads = [b"abc", b"", b"0123456789"]
        blob = encode_frames(payloads)
        assert blob == b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(blob) == payloads

    def test_configure_round_trip(self):
        payload = protocol.encode_configure(9, protocol.FLAG_BATCH_EVENTS)
        assert protocol.decode_configure(payload) == protocol.FLAG_BATCH_EVENTS
        body = protocol.encode_configured(protocol.FLAG_BATCH_EVENTS)
        assert protocol.decode_configured(body) == protocol.FLAG_BATCH_EVENTS

    def test_eviction_notice_codes(self):
        note = Notification(kind=NOTIFY_SUBSCRIPTION_EVICTED, epoch=4,
                            value=17, detail="slow consumer")
        sub_id, decoded = protocol.decode_event(protocol.encode_event(12, note))
        assert sub_id == 12 and decoded == note


# ---------------------------------------------------------------------------
# persistence: canonical pattern text across restarts
# ---------------------------------------------------------------------------


class TestSubscriptionPersistence:
    def test_round_trip_preserves_ids_and_recoalesces(self):
        engine = StandingQueryEngine()
        a = engine.subscribe(PlaceWatch(place=L1), max_queue=7)
        b = engine.subscribe(pattern_from_spec(PatternSpec(PATTERN_PLACE, place=L1)))
        c = engine.subscribe(
            compile_pattern("PATTERN SEQ(arrival a) WHERE a.place == 1")
        )
        data = engine.dump_subscriptions()

        restored = StandingQueryEngine()
        assert restored.restore_subscriptions(data) == 3
        assert set(restored.subscriptions) == {a.sub_id, b.sub_id, c.sub_id}
        assert restored.subscriptions[a.sub_id].max_queue == 7
        # spec twins re-coalesce into one runtime; the sase pattern is its own
        assert len(restored.runtimes) == 2
        # new subscriptions never collide with restored ids
        fresh = restored.subscribe(Tail())
        assert fresh.sub_id > max(a.sub_id, b.sub_id, c.sub_id)

    def test_restored_engine_delivers_equivalently(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(
            compile_pattern("PATTERN SEQ(arrival a) WHERE a.place == 0")
        )
        restored = StandingQueryEngine()
        restored.restore_subscriptions(engine.dump_subscriptions())
        for epoch, batch in _epochs(4):
            engine.publish(epoch, batch)
            restored.publish(epoch, batch)
        want = [protocol.encode_notification(n) for n in engine.drain(sub.sub_id)]
        got = [protocol.encode_notification(n) for n in restored.drain(sub.sub_id)]
        assert want == got and want

    def test_version_mismatch_rejected(self):
        engine = StandingQueryEngine()
        with pytest.raises(ValueError):
            engine.restore_subscriptions(b'{"version": 99, "subscriptions": []}')

    def test_server_save_load_round_trip(self, tmp_path):
        from repro.serving.server import SpireServer

        state = tmp_path / "subs.json"
        server = SpireServer()
        server.engine.subscribe(PlaceWatch(place=L1))
        server.engine.subscribe(PlaceWatch(place=L1))
        assert server.save_subscriptions(state) == 2
        reborn = SpireServer()
        assert reborn.load_subscriptions(state) == 2
        assert len(reborn.engine.runtimes) == 1
        assert reborn.load_subscriptions(tmp_path / "missing.json") == 0


# ---------------------------------------------------------------------------
# client/server: negotiation, handles, eviction notices, batched push
# ---------------------------------------------------------------------------


def _drive(engine_server, epoch, batch):
    return engine_server.publish_epoch(epoch, batch)


class TestServingV2EndToEnd:
    def test_batched_push_and_handle_api(self):
        async def run():
            from repro.serving.client import SpireClient
            from repro.serving.server import SpireServer

            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    assert client.features & protocol.FLAG_BATCH_EVENTS
                    subs = [
                        await client.subscribe(PatternSpec(PATTERN_PLACE, place=L1))
                        for _ in range(3)
                    ]
                    assert len(server.engine.runtimes) == 1
                    for epoch, batch in _epochs(2):
                        await _drive(server, epoch, batch)
                    for sub in subs:
                        first = await sub.next(timeout=5)
                        assert first.kind == "place_event" and first.place == L1
                    assert (await client.stats())["shared_runtimes"] == 1
                finally:
                    await client.close()

        asyncio.run(run())

    def test_unbatched_fallback_still_delivers(self):
        async def run():
            from repro.serving.client import SpireClient
            from repro.serving.server import SpireServer

            async with SpireServer() as server:
                client = await SpireClient.connect(
                    server.host, server.port, batch_events=False
                )
                try:
                    assert client.features == 0
                    sub = await client.subscribe(PatternSpec(PATTERN_PLACE, place=L1))
                    await _drive(server, 0, [start_location(item(1), L1, 0)])
                    note = await sub.next(timeout=5)
                    assert note.kind == "place_event"
                finally:
                    await client.close()

        asyncio.run(run())

    def test_subscribe_accepts_source_text_and_returns_handle(self):
        async def run():
            from repro.serving.client import SpireClient
            from repro.serving.server import SpireServer

            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    sub = await client.subscribe(
                        "PATTERN SEQ(arrival a) WHERE a.place == 0"
                    )
                    assert sub.id >= 0 and not sub.evicted
                    await _drive(server, 0, [start_location(item(1), L1, 0)])
                    note = await sub.next(timeout=5)
                    assert note.obj == item(1)
                    assert await sub.cancel()
                    with pytest.raises(Exception):
                        await sub.next(timeout=0.1)
                finally:
                    await client.close()

        asyncio.run(run())

    def test_subscribe_pattern_shim_warns_and_works(self):
        async def run():
            from repro.serving.client import SpireClient
            from repro.serving.server import SpireServer

            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    with pytest.warns(DeprecationWarning):
                        sub_id = await client.subscribe_pattern(
                            "PATTERN SEQ(arrival a) WHERE a.place == 0"
                        )
                    assert isinstance(sub_id, int)
                finally:
                    await client.close()

        asyncio.run(run())

    def test_slow_consumer_eviction_over_tcp(self):
        async def run():
            from repro.serving.client import ServingError, SpireClient
            from repro.serving.server import SpireServer

            async with SpireServer(evict_after=2) as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    sub = await client.subscribe(
                        PatternSpec(PATTERN_PLACE, place=L1), max_queue=1
                    )
                    # server-side queue of 1, two fresh arrivals per epoch:
                    # every publish overflows and the streak never resets
                    for t in range(3):
                        await _drive(server, t, [
                            start_location(item(1 + 2 * t), L1, t),
                            start_location(item(2 + 2 * t), L1, t),
                        ])
                    while not sub.evicted:
                        await sub.next(timeout=5)
                    with pytest.raises(ServingError):
                        await sub.next(timeout=1)
                    assert (await client.stats())["subscriptions_evicted"] == 1
                    assert (await client.stats())["active_subscriptions"] == 0
                finally:
                    await client.close()

        asyncio.run(run())


# ---------------------------------------------------------------------------
# session API + multi-process front-end
# ---------------------------------------------------------------------------


class TestSessionSubscribe:
    @pytest.fixture(scope="class")
    def sim(self):
        from repro.simulator.config import SimulationConfig
        from repro.simulator.warehouse import WarehouseSimulator

        config = SimulationConfig(duration=60, pallet_period=40, seed=11)
        return WarehouseSimulator(config).run()

    def test_session_subscribe_and_drain(self, sim):
        from repro.api import SessionSubscription, SpireConfig, SpireSession

        with SpireSession(SpireConfig.from_simulation(sim)) as session:
            tail = session.subscribe(PatternSpec(PATTERN_TAIL))
            assert isinstance(tail, SessionSubscription)
            drained = 0
            for readings in sim.stream:
                session.process_epoch(readings)
                drained += len(tail.drain())
            assert drained > 0
            assert tail.pending() == 0
            assert tail.next() is None
            assert tail.cancel()
            assert not tail.cancel()  # idempotent
            assert session.serving_engine.stats.active_subscriptions == 0

    def test_session_subscribe_shares_runtimes(self, sim):
        from repro.api import SpireConfig, SpireSession

        with SpireSession(SpireConfig.from_simulation(sim)) as session:
            subs = [session.subscribe(PatternSpec(PATTERN_TAIL)) for _ in range(4)]
            assert len({s.id for s in subs}) == 4
            assert len(session.serving_engine.runtimes) == 1
            for readings in list(sim.stream)[:10]:
                session.process_epoch(readings)
            blobs = {
                b"".join(protocol.encode_notification(n) for n in s.drain())
                for s in subs
            }
            assert len(blobs) == 1  # byte-identical across duplicate handles

    def test_session_subscribe_accepts_source_text(self, sim):
        from repro.api import SpireConfig, SpireSession

        with SpireSession(SpireConfig.from_simulation(sim)) as session:
            sub = session.subscribe("PATTERN SEQ(arrival a)")
            for readings in list(sim.stream)[:20]:
                session.process_epoch(readings)
            notes = sub.drain()
            assert notes and all(n.kind == "sase_match" for n in notes)


class TestMultiProcessFrontend:
    def test_two_acceptors_share_a_port_and_replicate(self):
        async def run():
            from repro.serving.client import SpireClient
            from repro.serving.frontend import MultiProcessFrontend

            async with MultiProcessFrontend(acceptors=2) as frontend:
                assert frontend.port != 0
                for epoch, batch in _epochs(3):
                    await frontend.publish_epoch(epoch, batch)
                # every accepted connection (kernel-balanced) must answer
                # from an identical replica
                for _ in range(4):
                    client = await SpireClient.connect(frontend.host, frontend.port)
                    try:
                        assert await client.location_of(item(1), 2) == L1
                        stats = await client.stats()
                        assert stats["epochs_published"] == 3
                    finally:
                        await client.close()
            totals = frontend.stats_dict()
            assert totals["acceptors"] == 2
            assert totals["epochs_published"] == 6  # 3 epochs x 2 replicas

        asyncio.run(run())

    def test_uvloop_probe_never_raises(self):
        from repro.serving.frontend import try_install_uvloop

        assert try_install_uvloop() in (True, False)

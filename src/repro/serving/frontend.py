"""Multi-process serving front-end: SO_REUSEPORT acceptors + uvloop.

One asyncio process tops out well below "tens of thousands of
subscribers" on connection handling alone, so the front-end scales the
*accept/push* side horizontally: :class:`MultiProcessFrontend` spawns N
acceptor processes that all bind the same ``host:port`` with
``SO_REUSEPORT`` (the kernel load-balances incoming connections across
them).  Each acceptor runs a full :class:`~repro.serving.server.SpireServer`
over its own **deterministic engine replica**: the parent broadcasts
every published epoch to every acceptor over a pipe, in lockstep
(ack-per-epoch), so all replicas hold identical live indexes and any
acceptor answers any query or subscription identically — the same
replica-determinism argument the parallel coordinator's byte-identical
merge relies on.

The frontend is duck-compatible with the single-process server where the
pump cares: ``await publish_epoch(epoch, messages)`` and a
``metrics_provider`` attribute, so
:func:`repro.serving.server.pump_coordinator` drives it unchanged.

:func:`try_install_uvloop` upgrades the event loop policy when uvloop is
importable — it is an optional dependency and its absence is never an
error (the container this repo targets does not ship it).
"""

from __future__ import annotations

import asyncio
import multiprocessing
from typing import Callable

from repro.events.messages import EventMessage


def try_install_uvloop() -> bool:
    """Install the uvloop event-loop policy if uvloop is importable.

    Returns whether uvloop is now the policy.  Safe to call anywhere
    before a loop is created; a missing uvloop leaves the default policy
    untouched.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


async def _acceptor_serve(conn, host: str, port: int, expand_level2: bool, evict_after: int) -> None:
    from repro.serving.server import SpireServer

    server = SpireServer(
        host=host,
        port=port,
        expand_level2=expand_level2,
        evict_after=evict_after,
        reuse_port=True,
    )
    await server.start()
    conn.send(("ready", server.port))
    loop = asyncio.get_running_loop()
    try:
        while True:
            # pipe reads are blocking; park them on an executor thread so
            # this acceptor keeps serving its connections between epochs
            msg = await loop.run_in_executor(None, conn.recv)
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "epoch":
                _, epoch, messages = msg
                await server.publish_epoch(epoch, messages)
                conn.send(("ack", epoch))
    except (EOFError, OSError):
        pass
    finally:
        stats = server.stats_dict()
        await server.close()
        try:
            conn.send(("stopped", stats))
        except (BrokenPipeError, OSError):
            pass


def _acceptor_main(conn, host: str, port: int, expand_level2: bool, evict_after: int, use_uvloop: bool) -> None:
    if use_uvloop:
        try_install_uvloop()
    asyncio.run(_acceptor_serve(conn, host, port, expand_level2, evict_after))


class MultiProcessFrontend:
    """N SO_REUSEPORT acceptor processes over replicated engines.

    Args:
        host/port: Bind address; port 0 picks an ephemeral port (the
            first acceptor binds, the rest join it via SO_REUSEPORT).
        acceptors: Number of acceptor processes.
        expand_level2 / evict_after: Forwarded to each acceptor's engine.
        use_uvloop: Ask each acceptor to install uvloop when importable.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        acceptors: int = 2,
        expand_level2: bool = True,
        evict_after: int = 0,
        use_uvloop: bool = False,
    ) -> None:
        if acceptors < 1:
            raise ValueError(f"acceptors must be >= 1, got {acceptors}")
        self.host = host
        self.port = port
        self.acceptors = acceptors
        self.expand_level2 = expand_level2
        self.evict_after = evict_after
        self.use_uvloop = use_uvloop
        #: pump_coordinator compatibility (the substrate snapshot is not
        #: forwarded to acceptor processes; their METRICS replies cover
        #: their own serving counters only)
        self.metrics_provider: Callable[[], dict] | None = None
        self.epochs_published = 0
        #: per-acceptor stats_dict() collected at close()
        self.final_stats: list[dict] = []
        self._procs: list[multiprocessing.Process] = []
        self._conns: list = []

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for i in range(self.acceptors):
            parent_conn, child_conn = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=_acceptor_main,
                args=(
                    child_conn,
                    self.host,
                    self.port,
                    self.expand_level2,
                    self.evict_after,
                    self.use_uvloop,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            kind, bound_port = await loop.run_in_executor(None, parent_conn.recv)
            if kind != "ready":  # pragma: no cover - defensive
                raise RuntimeError(f"acceptor {i} failed to start: {kind}")
            # the first acceptor resolves an ephemeral port; the rest must
            # join exactly that port for SO_REUSEPORT balancing
            self.port = bound_port
            self._procs.append(proc)
            self._conns.append(parent_conn)

    async def publish_epoch(self, epoch: int, messages: list[EventMessage]) -> int:
        """Broadcast one epoch to every acceptor replica, in lockstep.

        Waits for every acceptor's ack so replicas can never drift apart
        (the ack doubles as backpressure on the pump).
        """
        loop = asyncio.get_running_loop()
        payload = ("epoch", epoch, list(messages))
        for conn in self._conns:
            conn.send(payload)
        acks = await asyncio.gather(
            *(loop.run_in_executor(None, conn.recv) for conn in self._conns)
        )
        for kind, acked in acks:
            if kind != "ack" or acked != epoch:  # pragma: no cover - defensive
                raise RuntimeError(f"acceptor desync: expected ack {epoch}, got {kind} {acked}")
        self.epochs_published += 1
        return 0

    async def close(self) -> None:
        loop = asyncio.get_running_loop()
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                kind, stats = await loop.run_in_executor(None, conn.recv)
                if kind == "stopped":
                    self.final_stats.append(stats)
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._procs.clear()
        self._conns.clear()

    async def __aenter__(self) -> "MultiProcessFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def stats_dict(self) -> dict:
        """Aggregate acceptor counters (available after :meth:`close`)."""
        totals: dict = {"acceptors": len(self.final_stats) or self.acceptors}
        for stats in self.final_stats:
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        return totals

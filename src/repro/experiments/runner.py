"""Experiment runner: trace → pipeline → metrics.

Drives a :class:`~repro.simulator.warehouse.SimulationResult` through SPIRE
or SMURF, scoring per-epoch accuracy online (so long traces do not require
storing per-epoch estimate snapshots) and collecting the compressed output
stream, per-epoch costs, and graph-size statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import SpireConfig, SpireSession
from repro.baselines.smurf import SmurfParams, SmurfPipeline
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment
from repro.compression.level1 import RangeCompressor
from repro.events.messages import EventMessage
from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy
from repro.metrics.sizing import compression_ratio
from repro.simulator.warehouse import SimulationResult


@dataclass
class SpireRunReport:
    """Everything one SPIRE run over a trace produced.

    Attributes:
        messages: The full compressed output stream.
        accuracy: One accumulator per requested scoring policy.
        raw_bytes: Encoded size of the raw input stream.
        update_seconds / inference_seconds: Total wall-clock cost of the
            capture and inference steps across all epochs.
        epochs: Number of epochs processed.
        peak_nodes / peak_edges: Largest graph seen during the run.
        final_memory_bytes: Graph memory estimate at the end of the run.
    """

    messages: list[EventMessage]
    accuracy: dict[ScoringPolicy, AccuracyAccumulator]
    raw_bytes: int
    update_seconds: float = 0.0
    inference_seconds: float = 0.0
    epochs: int = 0
    peak_nodes: int = 0
    peak_edges: int = 0
    final_memory_bytes: int = 0
    peak_memory_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.messages, self.raw_bytes)

    @property
    def update_seconds_per_epoch(self) -> float:
        return self.update_seconds / self.epochs if self.epochs else 0.0

    @property
    def inference_seconds_per_epoch(self) -> float:
        return self.inference_seconds / self.epochs if self.epochs else 0.0


def run_spire(
    sim: SimulationResult,
    params: InferenceParams | None = None,
    compression_level: int = 2,
    policies: tuple[ScoringPolicy, ...] = (ScoringPolicy.ALL,),
    score: bool = True,
) -> SpireRunReport:
    """Run SPIRE over a simulated trace, scoring accuracy per epoch."""
    session = SpireSession(
        SpireConfig.from_simulation(
            sim, params=params, compression_level=compression_level
        )
    )
    spire = session.spire
    exclude = frozenset({sim.layout.entry_door.color})
    accuracy = {
        policy: AccuracyAccumulator(policy=policy, exclude_colors=exclude)
        for policy in policies
    }
    report = SpireRunReport(messages=[], accuracy=accuracy, raw_bytes=sim.stream.raw_bytes)

    snapshots = sim.truth.snapshots
    for readings, snapshot in zip(sim.stream, snapshots):
        output = spire.process_epoch(readings)
        report.messages.extend(output.messages)
        report.update_seconds += output.update_seconds
        report.inference_seconds += output.inference_seconds
        report.epochs += 1
        report.peak_nodes = max(report.peak_nodes, spire.graph.node_count)
        report.peak_edges = max(report.peak_edges, spire.graph.edge_count)
        report.peak_memory_bytes = max(report.peak_memory_bytes, spire.graph.memory_bytes())
        if score:
            for accumulator in accuracy.values():
                accumulator.score_epoch(spire, snapshot)
    report.final_memory_bytes = spire.graph.memory_bytes()
    return report


@dataclass
class SmurfRunReport:
    """Results of one SMURF run over a trace (location-only)."""

    messages: list[EventMessage]
    accuracy: AccuracyAccumulator
    raw_bytes: int
    epochs: int = 0

    @property
    def compression_ratio(self) -> float:
        return compression_ratio(self.messages, self.raw_bytes)


def run_smurf(
    sim: SimulationResult,
    params: SmurfParams | None = None,
    policy: ScoringPolicy = ScoringPolicy.ALL,
    score: bool = True,
) -> SmurfRunReport:
    """Run the SMURF baseline over a simulated trace."""
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    smurf = SmurfPipeline(deployment, params)
    exclude = frozenset({sim.layout.entry_door.color})
    accuracy = AccuracyAccumulator(policy=policy, exclude_colors=exclude)
    report = SmurfRunReport(messages=[], accuracy=accuracy, raw_bytes=sim.stream.raw_bytes)

    for readings, snapshot in zip(sim.stream, sim.truth.snapshots):
        report.messages.extend(smurf.process_epoch(readings))
        report.epochs += 1
        if score:
            _score_smurf(smurf, snapshot, accuracy)
    return report


def _score_smurf(smurf: SmurfPipeline, snapshot, accuracy: AccuracyAccumulator) -> None:
    """Location-only scoring for SMURF (it has no graph/containment)."""
    for tag, location in snapshot.locations.items():
        true_color = location.color
        if true_color in accuracy.exclude_colors:
            continue
        accuracy.location_total += 1
        if smurf.location_of(tag) != true_color:
            accuracy.location_errors += 1


def ground_truth_stream(
    sim: SimulationResult,
    include_containment: bool = True,
    exclude_colors: frozenset[int] = frozenset(),
) -> list[EventMessage]:
    """The ground truth as a level-1 compressed event stream (§VI-D).

    Pushes every per-epoch truth snapshot through a range compressor as if
    inference were perfect; serves as the Expt 7 reference.  Locations in
    ``exclude_colors`` (e.g. the entry door) are reported as-is — exclusion
    happens at matching time by filtering, not here — so the reference is a
    faithful compression of the world history.
    """
    compressor = RangeCompressor(emit_location=True, emit_containment=include_containment)
    messages: list[EventMessage] = []
    known: set = set()
    for snapshot in sim.truth.snapshots:
        now = snapshot.epoch
        current = set(snapshot.locations)
        for tag in sorted(known - current):
            messages.extend(compressor.depart(tag, now))
        known = current
        for tag in sorted(current):
            location = snapshot.locations[tag]
            container = snapshot.containers.get(tag)
            messages.extend(
                compressor.observe(tag, location.color, container, now)
            )
    return messages

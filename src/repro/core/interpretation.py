"""Interpretation result types shared by the inference modules.

An :class:`InterpretationResult` is what one inference pass (§IV) produces
for one epoch: for each object considered, the most likely location (a
color, or :data:`~repro.core.graph.UNKNOWN_COLOR`) and the most likely
container (a tag, or ``None`` for a top-level/uncontained object), together
with whether the location was directly observed or inferred — the
distinction that drives conflict resolution (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.graph import UNKNOWN_COLOR
from repro.model.objects import TagId


class LocationSource(Enum):
    """How an object's location estimate was established this epoch."""

    OBSERVED = "observed"   # read by a reader this epoch
    INFERRED = "inferred"   # produced by node inference
    WITHHELD = "withheld"   # partial inference declined to report (§IV-D)


@dataclass(slots=True)
class Estimate:
    """Location and containment estimate for one object at one epoch.

    Attributes:
        tag: The object.
        location: Most likely location color, or ``UNKNOWN_COLOR``.
        location_prob: Probability mass behind the chosen location (1.0 for
            observed locations).
        source: Whether the location is observed, inferred, or withheld.
        container: Most likely container tag, or ``None``.
        container_prob: Eq. 2 probability of the chosen parent edge.
        exiting: True when the object was read at a proper exit channel
            this epoch (its node is removed after output).
    """

    tag: TagId
    location: int
    location_prob: float
    source: LocationSource
    container: TagId | None = None
    container_prob: float = 0.0
    exiting: bool = False

    @property
    def is_missing(self) -> bool:
        """True when the object is estimated absent from any known location."""
        return self.location == UNKNOWN_COLOR

    @property
    def observed(self) -> bool:
        return self.source is LocationSource.OBSERVED


@dataclass
class InterpretationResult:
    """All estimates of one inference pass, keyed by object tag."""

    epoch: int
    complete: bool
    estimates: dict[TagId, Estimate] = field(default_factory=dict)

    def add(self, estimate: Estimate) -> None:
        self.estimates[estimate.tag] = estimate

    def get(self, tag: TagId) -> Estimate | None:
        return self.estimates.get(tag)

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(self.estimates.values())

    def children_of(self, parent: TagId) -> list[Estimate]:
        """Estimates whose chosen container is ``parent`` (for Table I polling)."""
        return [e for e in self.estimates.values() if e.container == parent]

"""Tests for the fault layer: injector, resilient ingestion, reader health."""

import pytest

from repro.core.capture import GraphUpdater, ReaderInfo
from repro.core.graph import Graph
from repro.core.params import InferenceParams
from repro.core.pipeline import Spire
from repro.events.messages import EventKind
from repro.events.wellformed import check_well_formed
from repro.faults import (
    DelayBatches,
    DropBatches,
    DuplicateBatches,
    FaultInjector,
    ReaderHealthMonitor,
    ReaderOutage,
    ResilientStream,
    UnknownReaderReadings,
    WarningKind,
    schedule_from_dict,
)
from repro.readers.stream import EpochReadings

from tests.conftest import case, epoch_readings, item, make_deployment


def simple_stream(epochs: int = 30, readers: tuple[int, ...] = (0, 1)):
    """A deterministic little stream: both readers see a few tags each epoch."""
    batches = []
    for epoch in range(epochs):
        by_reader = {}
        for reader_id in readers:
            by_reader[reader_id] = [case(reader_id + 1), item(10 * reader_id + epoch % 3)]
        batches.append(epoch_readings(epoch, by_reader))
    return batches


# ---------------------------------------------------------------------------
# injector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_no_schedule_is_identity(self):
        stream = simple_stream()
        out = list(FaultInjector(stream, [], seed=1))
        assert [b.epoch for b in out] == [b.epoch for b in stream]
        assert all(a.by_reader == b.by_reader for a, b in zip(out, stream))

    def test_deterministic_under_seed(self):
        schedule = [DropBatches(rate=0.3), DelayBatches(rate=0.3, max_delay=2)]
        first = [b.epoch for b in FaultInjector(simple_stream(), schedule, seed=42)]
        second = [b.epoch for b in FaultInjector(simple_stream(), schedule, seed=42)]
        assert first == second

    def test_reader_outage_silences_reader(self):
        schedule = [ReaderOutage(reader_id=1, start=5, duration=10)]
        out = list(FaultInjector(simple_stream(), schedule, seed=0))
        for batch in out:
            if 5 <= batch.epoch < 15:
                assert 1 not in batch.by_reader
            else:
                assert 1 in batch.by_reader
        # the source batches themselves are untouched
        assert all(1 in b.by_reader for b in simple_stream())

    def test_drop_removes_whole_batches(self):
        injector = FaultInjector(simple_stream(), [DropBatches(rate=1.0, start=10, end=12)], seed=0)
        epochs = [b.epoch for b in injector]
        assert 10 not in epochs and 11 not in epochs
        assert injector.dropped_epochs == [10, 11]

    def test_delay_delivers_out_of_order(self):
        injector = FaultInjector(
            simple_stream(), [DelayBatches(rate=1.0, max_delay=3, start=5, end=6)], seed=3
        )
        epochs = [b.epoch for b in injector]
        assert sorted(epochs) == list(range(30))
        assert epochs != list(range(30))
        assert injector.delayed_epochs == [5]
        assert epochs.index(5) > epochs.index(6)

    def test_duplicate_delivers_twice(self):
        injector = FaultInjector(
            simple_stream(), [DuplicateBatches(rate=1.0, start=7, end=8)], seed=0
        )
        epochs = [b.epoch for b in injector]
        assert epochs.count(7) == 2

    def test_unknown_reader_injects_readings(self):
        injector = FaultInjector(
            simple_stream(), [UnknownReaderReadings(reader_id=99, rate=1.0)], seed=0
        )
        out = list(injector)
        assert all(99 in b.by_reader and b.by_reader[99] for b in out)

    def test_schedule_from_dict_round_trip(self):
        schedule = schedule_from_dict(
            [
                {"kind": "reader_outage", "reader_id": 3, "start": 10, "duration": 50},
                {"kind": "drop_batches", "rate": 0.02},
                {"kind": "delay_batches", "rate": 0.05, "max_delay": 4},
                {"kind": "duplicate_batches", "rate": 0.01},
                {"kind": "unknown_reader", "reader_id": 77, "rate": 0.1},
            ]
        )
        assert [type(s).__name__ for s in schedule] == [
            "ReaderOutage",
            "DropBatches",
            "DelayBatches",
            "DuplicateBatches",
            "UnknownReaderReadings",
        ]

    def test_schedule_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            schedule_from_dict([{"kind": "meteor_strike"}])

    def test_schedule_from_dict_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="bad fields"):
            schedule_from_dict([{"kind": "drop_batches", "rate": 0.1, "frequency": 2}])


# ---------------------------------------------------------------------------
# resilient ingestion
# ---------------------------------------------------------------------------


class TestResilientStream:
    def test_passthrough_on_clean_stream(self):
        stream = simple_stream()
        out = list(ResilientStream(stream, max_delay=3))
        assert [b.epoch for b in out] == list(range(30))
        assert not ResilientStream(stream, max_delay=3).warnings

    def test_reorders_bounded_delay_losslessly(self):
        injector = FaultInjector(
            simple_stream(), [DelayBatches(rate=0.5, max_delay=3)], seed=9
        )
        resilient = ResilientStream(injector, max_delay=3)
        out = list(resilient)
        assert [b.epoch for b in out] == list(range(30))
        assert resilient.synthesized_epochs == 0
        # real content preserved for every epoch
        assert all(b.reading_count > 0 for b in out)

    def test_synthesizes_empty_epochs_for_drops(self):
        injector = FaultInjector(
            simple_stream(), [DropBatches(rate=1.0, start=10, end=13)], seed=0
        )
        resilient = ResilientStream(injector, max_delay=2)
        out = list(resilient)
        assert [b.epoch for b in out] == list(range(30))
        assert [b.epoch for b in out if b.reading_count == 0] == [10, 11, 12]
        assert resilient.synthesized_epochs == 3
        kinds = {w.kind for w in resilient.warnings}
        assert WarningKind.GAP_SYNTHESIZED in kinds

    def test_suppresses_duplicates(self):
        injector = FaultInjector(
            simple_stream(), [DuplicateBatches(rate=1.0)], seed=0
        )
        resilient = ResilientStream(injector, max_delay=2)
        out = list(resilient)
        assert [b.epoch for b in out] == list(range(30))
        assert sum(1 for w in resilient.warnings if w.kind == WarningKind.DUPLICATE_BATCH) == 30

    def test_quarantines_unknown_readers(self):
        injector = FaultInjector(
            simple_stream(), [UnknownReaderReadings(reader_id=99, rate=1.0)], seed=0
        )
        resilient = ResilientStream(injector, max_delay=0, known_readers={0, 1})
        out = list(resilient)
        assert all(99 not in b.by_reader for b in out)
        assert all(r.reader_id == 99 for r in resilient.quarantine.readings)
        assert any(w.kind == WarningKind.UNKNOWN_READER for w in resilient.warnings)

    def test_quarantines_late_batches(self):
        # epoch 3 arrives after the watermark (max_delay=1) has passed it
        batches = [epoch_readings(e, {0: [item(1)]}) for e in (0, 1, 2, 4, 5, 6, 3)]
        resilient = ResilientStream(batches, max_delay=1)
        out = list(resilient)
        assert [b.epoch for b in out] == list(range(7))
        synthesized = [b.epoch for b in out if b.reading_count == 0]
        assert synthesized == [3]
        late = [w for w in resilient.warnings if w.kind == WarningKind.LATE_BATCH]
        assert len(late) == 1 and late[0].epoch == 3
        assert resilient.quarantine.readings  # the late readings were held

    def test_output_always_feeds_the_strict_pipeline(self):
        """Whatever the injector does, the resilient output satisfies the
        monotonic, gap-free epoch contract Spire enforces."""
        schedule = [
            ReaderOutage(reader_id=0, start=5, duration=10),
            DropBatches(rate=0.2),
            DelayBatches(rate=0.3, max_delay=4),
            DuplicateBatches(rate=0.2),
            UnknownReaderReadings(reader_id=99, rate=0.2),
        ]
        injector = FaultInjector(simple_stream(60), schedule, seed=21)
        resilient = ResilientStream(injector, max_delay=4, known_readers={0, 1})
        epochs = [b.epoch for b in resilient]
        assert epochs == sorted(set(epochs))
        assert epochs == list(range(epochs[0], epochs[-1] + 1))


# ---------------------------------------------------------------------------
# reader health
# ---------------------------------------------------------------------------

DOCK = ReaderInfo(reader_id=0, color=0)
SHELF = ReaderInfo(reader_id=1, color=1, period=5)


class TestReaderHealthMonitor:
    def test_rejects_small_k(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            ReaderHealthMonitor({0: DOCK}, k=0.5)

    def test_flags_reader_after_k_periods_of_silence(self):
        monitor = ReaderHealthMonitor({0: DOCK, 1: SHELF}, k=1.2)
        for epoch in range(30):
            by_reader = {0: [item(1)]}
            if epoch <= 10 and epoch % 5 == 0:
                by_reader[1] = [item(2)]
            monitor.observe_epoch(epoch_readings(epoch, by_reader), epoch)
        assert monitor.is_silent(1)
        assert not monitor.is_silent(0)
        assert monitor.suppressed_colors() == {SHELF.color}
        silent_events = [e for e in monitor.events if e.kind == WarningKind.READER_SILENT]
        assert silent_events and silent_events[0].reader_id == 1
        # flagged only after more than k * period = 6 epochs of silence
        assert silent_events[0].epoch > 10 + 1.2 * SHELF.period

    def test_recovery_lifts_suppression(self):
        monitor = ReaderHealthMonitor({0: DOCK, 1: SHELF}, k=1.2)
        for epoch in range(20):
            monitor.observe_epoch(epoch_readings(epoch, {0: [item(1)]}), epoch)
        assert monitor.is_silent(1)
        monitor.observe_epoch(epoch_readings(20, {0: [item(1)], 1: [item(2)]}), 20)
        assert not monitor.is_silent(1)
        assert monitor.suppressed_colors() == frozenset()
        assert any(e.kind == WarningKind.READER_RECOVERED for e in monitor.events)

    def test_color_with_a_live_reader_is_not_suppressed(self):
        twin = ReaderInfo(reader_id=2, color=1, period=5)
        monitor = ReaderHealthMonitor({1: SHELF, 2: twin}, k=1.2)
        for epoch in range(30):
            monitor.observe_epoch(epoch_readings(epoch, {2: [item(1)]}), epoch)
        assert monitor.is_silent(1)
        assert monitor.suppressed_colors() == frozenset()


# ---------------------------------------------------------------------------
# graceful degradation through the core
# ---------------------------------------------------------------------------


class TestOutageSuppression:
    def _run(self, with_health: bool):
        """Item sits on a period-5 shelf; the shelf reader dies at epoch 11."""
        deployment = make_deployment(DOCK, SHELF)
        health = ReaderHealthMonitor(deployment.readers, k=1.2) if with_health else None
        spire = Spire(deployment, InferenceParams(), health=health)
        messages = []
        for epoch in range(40):
            by_reader = {0: [case(9)]}  # keeps the dock side alive
            if epoch <= 10 and epoch % 5 == 0:
                by_reader[1] = [item(1)]  # shelf reports until the outage
            messages.extend(spire.process_epoch(epoch_readings(epoch, by_reader)).messages)
        return spire, messages

    def test_seed_behavior_emits_spurious_missing(self):
        """Regression baseline: without the monitor, a dead shelf reader is
        misread as the shelved object going missing."""
        spire, messages = self._run(with_health=False)
        assert any(
            m.kind is EventKind.MISSING and m.obj == item(1) for m in messages
        )

    def test_suppression_removes_spurious_missing(self):
        spire, messages = self._run(with_health=True)
        assert not any(
            m.kind is EventKind.MISSING and m.obj == item(1) for m in messages
        )
        # the posterior stays frozen at the shelf
        assert spire.location_of(item(1)) == SHELF.color
        check_well_formed(messages)

    def test_suppression_preserves_edge_history(self):
        """Negative co-location evidence is withheld while the partner's
        reader is down (the non-read is the outage's fault)."""
        graph = Graph()
        params = InferenceParams()
        updater = GraphUpdater(graph, params)
        readers = {0: DOCK, 1: SHELF}
        # build the edge: case and item co-read on the shelf
        for epoch in range(3):
            updater.apply_epoch(epoch_readings(epoch, {1: [case(1), item(1)]}), readers, epoch)
        edge = next(iter(graph.node(item(1)).parents.values()))
        filled_before = edge.filled

        # the case moves to the dock; the shelf reader is dead, so the item
        # is unobserved.  Without suppression each epoch pushes a zero.
        updater.suppressed_colors = frozenset({SHELF.color})
        for epoch in range(3, 8):
            updater.apply_epoch(epoch_readings(epoch, {0: [case(1)]}), readers, epoch)
        assert edge.filled == filled_before
        assert edge.child.confirmed_conflicts == 0

        # with the suppression lifted, the zeros flow again
        updater.suppressed_colors = frozenset()
        for epoch in range(8, 10):
            updater.apply_epoch(epoch_readings(epoch, {0: [case(1)]}), readers, epoch)
        assert edge.filled > filled_before


class TestEpochMonotonicity:
    def test_non_increasing_epoch_rejected(self):
        spire = Spire(make_deployment(DOCK))
        spire.process_epoch(epoch_readings(5, {0: [item(1)]}))
        with pytest.raises(ValueError, match="epoch 5 is not after the last processed epoch 5"):
            spire.process_epoch(epoch_readings(5, {0: [item(1)]}))
        with pytest.raises(ValueError, match="epoch 3 is not after the last processed epoch 5"):
            spire.process_epoch(epoch_readings(3, {0: [item(1)]}))

    def test_gaps_are_still_allowed(self):
        spire = Spire(make_deployment(DOCK))
        spire.process_epoch(epoch_readings(5, {0: [item(1)]}))
        spire.process_epoch(epoch_readings(9, {0: [item(1)]}))
        assert spire.location_of(item(1)) == DOCK.color


# ---------------------------------------------------------------------------
# property: every fault kind degrades gracefully into a well-formed stream
# ---------------------------------------------------------------------------

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.faults import ALL_FAULT_KINDS

_DEFAULT_SPECS = {
    ReaderOutage: ReaderOutage(reader_id=1, start=8, duration=15),
    DropBatches: DropBatches(rate=0.3),
    DelayBatches: DelayBatches(rate=0.4, max_delay=3),
    DuplicateBatches: DuplicateBatches(rate=0.3),
    UnknownReaderReadings: UnknownReaderReadings(reader_id=99, rate=0.4),
}


def movement_stream(epochs: int = 45):
    """Item 1 dwells at the dock, moves to the shelf, then departs."""
    batches = []
    for epoch in range(epochs):
        by_reader = {0: [case(9)]}
        if epoch < 6:
            by_reader[0].append(item(1))
        elif epoch < 30 and epoch % SHELF.period == 0:
            by_reader[1] = [item(1)]
        batches.append(epoch_readings(epoch, by_reader))
    return batches


@pytest.mark.parametrize("fault_kind", ALL_FAULT_KINDS, ids=lambda k: k.__name__)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_output_well_formed_under_every_fault_kind(fault_kind, seed):
    assert set(_DEFAULT_SPECS) == set(ALL_FAULT_KINDS)
    injector = FaultInjector(movement_stream(), [_DEFAULT_SPECS[fault_kind]], seed=seed)
    resilient = ResilientStream(injector, max_delay=3, known_readers={0, 1})
    spire = Spire(make_deployment(DOCK, SHELF), health=True)
    messages = []
    for batch in resilient:  # Spire itself enforces strict epoch order here
        messages.extend(spire.process_epoch(batch).messages)
    check_well_formed(messages)


# ---------------------------------------------------------------------------
# acceptance: combined fault schedule on the warehouse trace
# ---------------------------------------------------------------------------


def test_combined_faults_bounded_degradation(small_sim):
    """ISSUE acceptance: 50-epoch reader outage + 2% drops + bounded
    out-of-order completes cleanly, well-formed, degradation < 10 points."""
    from repro.experiments.runner import ground_truth_stream
    from repro.metrics.events import f_measure
    from repro.core.pipeline import Deployment

    sim = small_sim
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    reference = ground_truth_stream(sim)
    max_delay = 3
    tolerance = max(r.period for r in sim.layout.readers) + max_delay + 2

    baseline = Spire(deployment, InferenceParams())
    baseline_messages = []
    for batch in sim.stream:
        baseline_messages.extend(baseline.process_epoch(batch).messages)

    shelf = next(r for r in sim.layout.readers if "shelf" in r.location.name)
    schedule = [
        ReaderOutage(reader_id=shelf.reader_id, start=200, duration=50),
        DropBatches(rate=0.02),
        DelayBatches(rate=0.05, max_delay=max_delay),
    ]
    injector = FaultInjector(sim.stream, schedule, seed=7)
    resilient = ResilientStream(
        injector, max_delay=max_delay, known_readers=deployment.readers
    )
    faulted = Spire(
        deployment,
        InferenceParams(),
        health=ReaderHealthMonitor(deployment.readers, k=3.0),
    )
    faulted_messages = []
    for batch in resilient:
        faulted_messages.extend(faulted.process_epoch(batch).messages)

    check_well_formed(baseline_messages)
    check_well_formed(faulted_messages)
    f_base = f_measure(baseline_messages, reference, tolerance)
    f_fault = f_measure(faulted_messages, reference, tolerance)
    degradation = 100.0 * (f_base - f_fault)
    assert degradation < 10.0

"""Unit tests for the event-message and raw-reading binary codecs."""

import io

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.events.codec import (
    CodecError,
    WIRE_FORMAT,
    decode_message,
    decode_stream,
    encode_message,
    encode_stream,
    read_stream,
    write_stream,
)
from repro.events.messages import (
    EVENT_MESSAGE_BYTES,
    EventKind,
    EventMessage,
    INFINITY,
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
)
from repro.model.objects import PackagingLevel, TagId
from repro.readers.codec import (
    ReadingCodecError,
    decode_reading,
    encode_reading,
    read_trace,
    write_trace,
)
from repro.readers.stream import RAW_READING_BYTES, Reading

from tests.conftest import case, epoch_readings, item, pallet


class TestEventCodec:
    def test_wire_size_matches_sizing_constant(self):
        assert WIRE_FORMAT.size == EVENT_MESSAGE_BYTES

    @pytest.mark.parametrize(
        "msg",
        [
            start_location(item(1), 3, 10),
            end_location(item(1), 3, 10, 99),
            start_containment(item(5), case(7), 0),
            end_containment(case(7), pallet(2), 4, 12),
            missing(pallet(9), 0, 77),
            missing(item(2), -1, 5),  # missing from the unknown location
        ],
    )
    def test_roundtrip(self, msg):
        assert decode_message(encode_message(msg)) == msg

    def test_infinity_roundtrip(self):
        msg = start_location(item(1), 0, 0)
        decoded = decode_message(encode_message(msg))
        assert decoded.ve == INFINITY

    def test_large_serial_roundtrip(self):
        msg = start_location(TagId(PackagingLevel.ITEM, (1 << 48) - 1), 2, 1)
        assert decode_message(encode_message(msg)) == msg

    def test_serial_overflow_rejected(self):
        msg = start_location(TagId(PackagingLevel.ITEM, 1 << 48), 2, 1)
        with pytest.raises(CodecError):
            encode_message(msg)

    def test_timestamp_overflow_rejected(self):
        msg = start_location(item(1), 0, (1 << 32) - 1)
        with pytest.raises(CodecError):
            encode_message(msg)

    def test_wrong_length_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"\x00" * 7)

    def test_unknown_kind_rejected(self):
        data = bytearray(encode_message(start_location(item(1), 0, 0)))
        data[0] = 250
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    def test_stream_roundtrip(self):
        msgs = [
            start_containment(item(1), case(1), 0),
            start_location(case(1), 2, 0),
            end_location(case(1), 2, 0, 9),
        ]
        assert list(decode_stream(encode_stream(msgs))) == msgs

    def test_stream_length_validation(self):
        with pytest.raises(CodecError):
            list(decode_stream(b"\x00" * (EVENT_MESSAGE_BYTES + 1)))

    def test_file_roundtrip(self):
        msgs = [start_location(item(i), i % 3, i) for i in range(10)]
        buffer = io.BytesIO()
        written = write_stream(msgs, buffer)
        assert written == 10 * EVENT_MESSAGE_BYTES
        buffer.seek(0)
        assert list(read_stream(buffer)) == msgs

    def test_truncated_file_rejected(self):
        buffer = io.BytesIO(encode_message(start_location(item(1), 0, 0))[:-3])
        with pytest.raises(CodecError):
            list(read_stream(buffer))

    @settings(max_examples=100, deadline=None)
    @given(
        kind=st.sampled_from(list(EventKind)),
        level=st.sampled_from(list(PackagingLevel)),
        serial=st.integers(1, (1 << 48) - 1),
        partner_serial=st.integers(1, (1 << 48) - 1),
        place=st.integers(-1, 100),
        vs=st.integers(0, 2**31),
        duration=st.integers(0, 1000),
    )
    def test_roundtrip_property(self, kind, level, serial, partner_serial, place, vs, duration):
        obj = TagId(level, serial)
        if kind.is_containment:
            msg = EventMessage(
                kind,
                obj,
                vs,
                INFINITY if kind is EventKind.START_CONTAINMENT else vs + duration,
                container=TagId(PackagingLevel.PALLET, partner_serial),
            )
        elif kind is EventKind.MISSING:
            msg = EventMessage(kind, obj, vs, vs, place=place)
        else:
            msg = EventMessage(
                kind,
                obj,
                vs,
                INFINITY if kind is EventKind.START_LOCATION else vs + duration,
                place=place,
            )
        assert decode_message(encode_message(msg)) == msg


class TestReadingCodec:
    def test_wire_size_matches_sizing_constant(self):
        from repro.readers.codec import WIRE_FORMAT as READING_FORMAT

        assert READING_FORMAT.size == RAW_READING_BYTES

    def test_roundtrip(self):
        reading = Reading(tag=case(3), reader_id=7, timestamp=123, seq=4)
        assert decode_reading(encode_reading(reading)) == reading

    def test_reader_id_overflow_rejected(self):
        with pytest.raises(ReadingCodecError):
            encode_reading(Reading(item(1), reader_id=1 << 16, timestamp=0))

    def test_trace_roundtrip(self):
        from repro.readers.stream import ReadingStream

        stream = ReadingStream(
            [
                epoch_readings(0, {0: [item(1), case(1)]}),
                epoch_readings(1, {}),
                epoch_readings(2, {1: [item(1)]}),
            ]
        )
        buffer = io.BytesIO()
        write_trace(stream, buffer)
        buffer.seek(0)
        restored = read_trace(buffer)
        assert len(restored) == 3  # the empty epoch is reconstructed
        assert restored[0].by_reader == {0: [item(1), case(1)]}
        assert not restored[1]
        assert restored[2].by_reader == {1: [item(1)]}

    def test_simulated_trace_roundtrip(self, small_sim):
        buffer = io.BytesIO()
        written = write_trace(small_sim.stream, buffer)
        assert written == small_sim.stream.raw_bytes
        buffer.seek(0)
        restored = read_trace(buffer)
        assert restored.total_readings == small_sim.stream.total_readings
        for original, loaded in zip(small_sim.stream, restored):
            if original:
                assert {t for ts in original.by_reader.values() for t in ts} == {
                    t for ts in loaded.by_reader.values() for t in ts
                }

"""SPIRE: efficient data interpretation and compression over RFID streams.

A faithful Python reproduction of Cocci, Nie, Diao, Shenoy (ICDE 2008).
The substrate turns raw ``<tag, reader, timestamp>`` streams into a
compressed event stream carrying inferred object locations and containment:

>>> from repro import SimulationConfig, WarehouseSimulator, Spire, Deployment
>>> sim = WarehouseSimulator(SimulationConfig(duration=120, pallet_period=60,
...                                           shelving_time_mean=30,
...                                           shelf_read_period=10)).run()
>>> spire = Spire(Deployment.from_readers(sim.layout.readers, sim.layout.registry))
>>> outputs = spire.run(sim.stream)
>>> any(o.messages for o in outputs)
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.api import SessionSubscription, SpireConfig, SpireSession
from repro.baselines.smurf import SmurfParams, SmurfPipeline
from repro.compression.decompress import Level2Decompressor, decompress_stream
from repro.compression.level1 import RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.core.capture import GraphUpdater, ReaderInfo
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.explain import Explanation, explain_object
from repro.core.graph import UNKNOWN_COLOR, Graph
from repro.core.interpretation import Estimate, InterpretationResult, LocationSource
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, EpochOutput, Spire
from repro.events.messages import EventKind, EventMessage
from repro.events.wellformed import check_well_formed
from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy
from repro.metrics.delay import detection_delays
from repro.metrics.events import match_events
from repro.metrics.sizing import compression_ratio, containment_only, location_only
from repro.model.locations import Location, LocationKind, UNKNOWN_LOCATION
from repro.obs import MetricRegistry, TraceLog, render_prometheus
from repro.model.objects import PackagingLevel, TagId
from repro.model.world import PhysicalWorld
from repro.query.index import EventStreamIndex, Interval
from repro.readers.reader import Reader, ReaderKind
from repro.readers.stream import EpochReadings, Reading, ReadingStream
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import SimulationResult, WarehouseSimulator

__version__ = "1.0.0"

__all__ = [
    # unified session API
    "SessionSubscription",
    "SpireSession",
    "SpireConfig",
    # telemetry
    "MetricRegistry",
    "TraceLog",
    "render_prometheus",
    # core substrate
    "Spire",
    "Deployment",
    "EpochOutput",
    "InferenceParams",
    "Graph",
    "GraphUpdater",
    "ReaderInfo",
    "InterpretationResult",
    "Estimate",
    "LocationSource",
    "UNKNOWN_COLOR",
    # events and compression
    "EventKind",
    "EventMessage",
    "check_well_formed",
    "RangeCompressor",
    "ContainmentCompressor",
    "Level2Decompressor",
    "decompress_stream",
    # world model and readers
    "PackagingLevel",
    "TagId",
    "Location",
    "LocationKind",
    "UNKNOWN_LOCATION",
    "PhysicalWorld",
    "Reader",
    "ReaderKind",
    "Reading",
    "EpochReadings",
    "ReadingStream",
    # simulator
    "SimulationConfig",
    "WarehouseSimulator",
    "SimulationResult",
    # baselines and metrics
    "SmurfPipeline",
    "SmurfParams",
    "AccuracyAccumulator",
    "ScoringPolicy",
    "match_events",
    "compression_ratio",
    "location_only",
    "containment_only",
    "detection_delays",
    # operational layer
    "EventStreamIndex",
    "Interval",
    "explain_object",
    "Explanation",
    "save_checkpoint",
    "load_checkpoint",
    "__version__",
]

"""Pattern-language quickstart: a textual SASE pattern over live TCP.

Boots a :class:`~repro.serving.server.SpireServer`, pumps a simulated
warehouse (with staged disappearances) through a two-zone coordinator,
and — from a real TCP client — ships **pattern source text** to the
server through the unified ``subscribe()``.  The pattern is the dwell-then-vanish
scenario from docs/SERVING.md: an object sat on the shelf for a while
and then went missing.  The server compiles the text (compile errors
come back as error replies — demonstrated too), partitions the runtime
per object, and pushes one notification per matching episode.

Usage:  python examples/sase_quickstart.py
"""

import asyncio

from repro import SimulationConfig, SpireConfig, SpireSession, WarehouseSimulator
from repro.serving.client import ServingError, SpireClient

DWELL_THEN_VANISH = """
PATTERN SEQ(arrival a, missing m)
WHERE a.place == {shelf} AND m.obj == a.obj AND m.vs - a.vs >= 20
WITHIN 200 EPOCHS
RETURN a.obj AS obj, a.vs AS since, m.vs AS vanished
"""


async def run() -> None:
    config = SimulationConfig(
        duration=400,
        pallet_period=90,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=15,
        num_shelves=2,
        shelving_time_mean=120,
        shelving_time_jitter=30,
        anomaly_period=110,  # the simulator stages disappearances
        seed=11,
    )
    sim = WarehouseSimulator(config).run()
    registry = sim.layout.registry
    session = SpireSession(SpireConfig.from_simulation(sim, zone_map={
        "inbound": ["entry-door", "receiving-belt"],
        "floor": ["shelf-1", "shelf-2",
                  "packaging-area", "exit-belt", "exit-door"],
    }))

    async with session.serve() as server:   # port 0 -> ephemeral
        print(f"serving on {server.host}:{server.port}")
        client = await SpireClient.connect(server.host, server.port)
        try:
            # a malformed pattern is rejected at subscribe time with the
            # compiler's message (offset included for syntax errors)
            try:
                await client.subscribe("SEQ(arrival a,")
            except ServingError as exc:
                print(f"compile error (expected): {exc}")

            shelf = registry.by_name("shelf-2").color
            source = DWELL_THEN_VANISH.format(shelf=shelf).strip()
            # subscribe() takes the source text directly and returns a
            # handle; sub.next() awaits matches without touching the
            # legacy notifications queue
            sub = await client.subscribe(source)
            print(f"subscribed #{sub.id}:")
            for line in source.splitlines():
                print(f"  | {line}")

            pumped = await session.pump(server, sim.stream)
            print(f"pumped {pumped} epochs")

            shown = 0
            while len(sub):
                print(f"  {await sub.next()}")
                shown += 1
            if not shown:
                print("  (no staged disappearance hit shelf-2 this seed)")

            stats = await client.stats()
            print(f"server: {stats['epochs_published']} epochs, "
                  f"{stats['notifications_delivered']} notifications")
        finally:
            await client.close()


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()

"""Unit tests for the low-level deduplication module."""

from repro.readers.dedup import Deduplicator
from repro.readers.stream import EpochReadings

from tests.conftest import epoch_readings, item


class TestDeduplication:
    def test_single_reader_passthrough(self):
        dedup = Deduplicator()
        clean = dedup.process(epoch_readings(0, {0: [item(1), item(2)]}))
        assert clean.by_reader == {0: [item(1), item(2)]}

    def test_tag_read_by_two_readers_assigned_once(self):
        dedup = Deduplicator()
        clean = dedup.process(epoch_readings(0, {0: [item(1)], 1: [item(1)]}))
        total = sum(len(tags) for tags in clean.by_reader.values())
        assert total == 1

    def test_most_recent_reader_wins(self):
        # seq increases with reader id in EpochReadings.readings(), so the
        # later-arriving report (higher seq) wins
        dedup = Deduplicator()
        clean = dedup.process(epoch_readings(0, {0: [item(1)], 2: [item(1)]}))
        assert clean.by_reader == {2: [item(1)]}

    def test_assignment_is_sticky_across_epochs(self):
        dedup = Deduplicator()
        dedup.process(epoch_readings(0, {2: [item(1)]}))
        # next epoch only reader 0 sees it: assignment moves
        clean = dedup.process(epoch_readings(1, {0: [item(1)]}))
        assert clean.by_reader == {0: [item(1)]}

    def test_epoch_number_preserved(self):
        dedup = Deduplicator()
        clean = dedup.process(epoch_readings(7, {0: [item(1)]}))
        assert clean.epoch == 7

    def test_input_not_mutated(self):
        dedup = Deduplicator()
        original = epoch_readings(0, {0: [item(1)], 1: [item(1)]})
        dedup.process(original)
        assert original.by_reader == {0: [item(1)], 1: [item(1)]}

    def test_empty_epoch(self):
        dedup = Deduplicator()
        clean = dedup.process(EpochReadings(epoch=0))
        assert not clean

    def test_forget_bounds_state(self):
        dedup = Deduplicator()
        dedup.process(epoch_readings(0, {0: [item(1), item(2)]}))
        assert dedup.tracked_tags == 2
        dedup.forget(item(1))
        assert dedup.tracked_tags == 1
        dedup.forget(item(99))  # unknown tag is a no-op
        assert dedup.tracked_tags == 1

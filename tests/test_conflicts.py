"""Unit tests for conflict resolution (Table I)."""

import pytest

from repro.core.conflicts import resolve_conflicts
from repro.core.interpretation import Estimate, InterpretationResult, LocationSource
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, item, pallet

BLUE, GREEN, RED = 0, 1, 2


def estimate(tag, location, source, container=None):
    return Estimate(
        tag=tag,
        location=location,
        location_prob=1.0 if source is LocationSource.OBSERVED else 0.6,
        source=source,
        container=container,
        container_prob=0.8 if container else 0.0,
    )


def result_of(*estimates) -> InterpretationResult:
    result = InterpretationResult(epoch=0, complete=True)
    for e in estimates:
        result.add(e)
    return result


class TestRuleI:
    def test_observed_parent_overrides_inferred_child(self):
        result = result_of(
            estimate(case(1), BLUE, LocationSource.OBSERVED),
            estimate(item(1), GREEN, LocationSource.INFERRED, container=case(1)),
        )
        changed = resolve_conflicts(result)
        assert changed == 1
        assert result.get(item(1)).location == BLUE

    def test_unknown_child_pulled_to_observed_parent(self):
        result = result_of(
            estimate(case(1), BLUE, LocationSource.OBSERVED),
            estimate(item(1), UNKNOWN_COLOR, LocationSource.INFERRED, container=case(1)),
        )
        resolve_conflicts(result)
        assert result.get(item(1)).location == BLUE

    def test_withheld_child_pulled_to_observed_parent(self):
        result = result_of(
            estimate(case(1), BLUE, LocationSource.OBSERVED),
            estimate(item(1), UNKNOWN_COLOR, LocationSource.WITHHELD, container=case(1)),
        )
        resolve_conflicts(result)
        child = result.get(item(1))
        assert child.location == BLUE
        assert child.source is LocationSource.INFERRED

    def test_observed_child_of_observed_parent_untouched(self):
        # both observed at the same place: no conflict, nothing changes
        result = result_of(
            estimate(case(1), BLUE, LocationSource.OBSERVED),
            estimate(item(1), BLUE, LocationSource.OBSERVED, container=case(1)),
        )
        assert resolve_conflicts(result) == 0


class TestRulesIIandIII:
    def test_majority_of_children_moves_inferred_parent(self):
        result = result_of(
            estimate(case(1), RED, LocationSource.INFERRED),
            estimate(item(1), BLUE, LocationSource.OBSERVED, container=case(1)),
            estimate(item(2), BLUE, LocationSource.OBSERVED, container=case(1)),
            estimate(item(3), GREEN, LocationSource.OBSERVED, container=case(1)),
        )
        resolve_conflicts(result)
        assert result.get(case(1)).location == BLUE
        # item 3 is observed elsewhere: its containment ends (Rule II)
        assert result.get(item(3)).container is None
        # items 1 and 2 now agree with the parent
        assert result.get(item(1)).container == case(1)

    def test_no_majority_keeps_parent_location(self):
        result = result_of(
            estimate(case(1), RED, LocationSource.INFERRED),
            estimate(item(1), BLUE, LocationSource.OBSERVED, container=case(1)),
            estimate(item(2), GREEN, LocationSource.OBSERVED, container=case(1)),
        )
        resolve_conflicts(result)
        assert result.get(case(1)).location == RED
        # both observed children conflict: both containments end
        assert result.get(item(1)).container is None
        assert result.get(item(2)).container is None

    def test_rule_iii_overrides_inferred_child(self):
        result = result_of(
            estimate(case(1), RED, LocationSource.INFERRED),
            estimate(item(1), GREEN, LocationSource.INFERRED, container=case(1)),
        )
        resolve_conflicts(result)
        # single inferred child: majority (1 of 1) moves the parent first
        assert result.get(case(1)).location == GREEN
        assert result.get(item(1)).location == GREEN
        assert result.get(item(1)).container == case(1)

    def test_unknown_children_do_not_vote(self):
        result = result_of(
            estimate(case(1), RED, LocationSource.INFERRED),
            estimate(item(1), UNKNOWN_COLOR, LocationSource.INFERRED, container=case(1)),
            estimate(item(2), BLUE, LocationSource.OBSERVED, container=case(1)),
        )
        resolve_conflicts(result)
        # the single known-location child is a strict minority (1 of 2), so
        # the parent stays; the observed conflicting child unlinks
        assert result.get(case(1)).location == RED
        assert result.get(item(2)).container is None
        # the unknown inferred child is pulled to the parent (Rule III)
        assert result.get(item(1)).location == RED


class TestCascade:
    def test_levels_resolved_top_down(self):
        # pallet observed; case inferred elsewhere; item inferred elsewhere.
        # pallet fixes case (Rule I), then case fixes item (Rule III via I
        # ordering at the next level down).
        result = result_of(
            estimate(pallet(1), BLUE, LocationSource.OBSERVED),
            estimate(case(1), GREEN, LocationSource.INFERRED, container=pallet(1)),
            estimate(item(1), RED, LocationSource.INFERRED, container=case(1)),
        )
        resolve_conflicts(result)
        assert result.get(case(1)).location == BLUE
        assert result.get(item(1)).location == BLUE


class TestScope:
    def test_parent_without_estimate_skipped(self):
        result = result_of(
            estimate(item(1), GREEN, LocationSource.INFERRED, container=case(9)),
        )
        assert resolve_conflicts(result) == 0
        assert result.get(item(1)).location == GREEN

    def test_no_containments_nothing_to_do(self):
        result = result_of(
            estimate(case(1), BLUE, LocationSource.OBSERVED),
            estimate(case(2), GREEN, LocationSource.INFERRED),
        )
        assert resolve_conflicts(result) == 0

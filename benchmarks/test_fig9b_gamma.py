"""Fig. 9(b) — location inference error vs. gamma (Expt 2).

Reproduces: location error rate as gamma sweeps 0 -> 1 (belief in the last
observation vs. belief in containment propagation), one curve per shelf
frequency.  Expected shape: a valley — very low gamma over-trusts stale own
colors / declares objects unknown, very high gamma over-trusts containment;
the paper finds gamma in [0.15, 0.45] favourable.

The scored population is HARD_ONLY (unobserved objects whose true location
changed since last seen) — the decisions this trade-off is about; see
DESIGN.md §3.
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

GAMMAS = [0.0, 0.15, 0.3, 0.45, 0.6, 0.8, 1.0]
SHELF_PERIODS = [1, 60]
POLICIES = (ScoringPolicy.ALL, ScoringPolicy.HARD_ONLY)


def location_errors(shelf_period: int, gamma: float) -> dict:
    report = get_spire(
        accuracy_config(shelf_read_period=shelf_period),
        params=InferenceParams(gamma=gamma),
        policies=POLICIES,
    )
    return {
        policy: report.accuracy[policy].location_error_rate for policy in POLICIES
    }


def run_experiment() -> dict:
    return {
        period: {gamma: location_errors(period, gamma) for gamma in GAMMAS}
        for period in SHELF_PERIODS
    }


@pytest.mark.benchmark(group="fig9b")
def test_fig9b_location_error_vs_gamma(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for policy in POLICIES:
        table = Table(
            f"Fig. 9(b): location error rate vs. gamma  [{policy.value} population]",
            ["shelf period (s)"] + [f"g={g}" for g in GAMMAS],
        )
        for period in SHELF_PERIODS:
            table.add(period, *(curves[period][g][policy] for g in GAMMAS))
        table.show()

    # Shape: the paper's favourable band [0.15, 0.45] should not lose to
    # the extremes on the hard population.
    for period in SHELF_PERIODS:
        hard = {g: curves[period][g][ScoringPolicy.HARD_ONLY] for g in GAMMAS}
        band_best = min(hard[g] for g in (0.15, 0.3, 0.45))
        assert band_best <= hard[0.0] + 0.02
        assert band_best <= hard[1.0] + 0.02

"""Unit tests for edge inference (Eqs. 1–2) and pruning."""

import pytest

from repro.core.edge_inference import (
    effective_beta,
    history_weight,
    infer_edges,
    prune_weak_parents,
)
from repro.core.graph import Graph
from repro.core.params import InferenceParams

from tests.conftest import case, item


@pytest.fixture
def graph() -> Graph:
    return Graph()


def make_edge(graph, parent_tag, child_tag, bits, now=10):
    """Edge with a given co-location history (most recent bit first)."""
    parent = graph.get_or_create(parent_tag, 0)
    child = graph.get_or_create(child_tag, 0)
    edge = graph.add_edge(parent, child, 0)
    size = InferenceParams().history_size
    for bit in reversed(bits):
        edge.push_history(bit, size)
    return edge


class TestHistoryWeight:
    def test_empty_history_weighs_zero(self, graph):
        edge = make_edge(graph, case(1), item(1), [])
        assert history_weight(edge, InferenceParams()) == 0.0

    def test_alpha_zero_is_fraction_of_filled(self, graph):
        edge = make_edge(graph, case(1), item(1), [True, False, True, True])
        assert history_weight(edge, InferenceParams(alpha=0.0)) == pytest.approx(3 / 4)

    def test_single_positive_bit_weighs_one(self, graph):
        edge = make_edge(graph, case(1), item(1), [True])
        assert history_weight(edge, InferenceParams()) == pytest.approx(1.0)

    def test_positive_alpha_emphasises_recent(self, graph):
        recent = make_edge(graph, case(1), item(1), [True, False, False, False])
        old = make_edge(graph, case(2), item(2), [False, False, False, True])
        params = InferenceParams(alpha=1.0)
        assert history_weight(recent, params) > history_weight(old, params)

    def test_alpha_zero_ignores_position(self, graph):
        recent = make_edge(graph, case(1), item(1), [True, False, False, False])
        old = make_edge(graph, case(2), item(2), [False, False, False, True])
        params = InferenceParams(alpha=0.0)
        assert history_weight(recent, params) == history_weight(old, params)


class TestInferEdges:
    def test_no_parents_returns_none(self, graph):
        node = graph.get_or_create(item(1), 0)
        assert infer_edges(node, InferenceParams()) is None

    def test_probabilities_normalised(self, graph):
        make_edge(graph, case(1), item(1), [True, True])
        make_edge(graph, case(2), item(1), [True, False])
        node = graph.node(item(1))
        infer_edges(node, InferenceParams())
        total = sum(e.prob for e in node.parents.values())
        assert total == pytest.approx(1.0)

    def test_stronger_history_wins(self, graph):
        strong = make_edge(graph, case(1), item(1), [True, True, True, True])
        make_edge(graph, case(2), item(1), [True, False, False, False])
        node = graph.node(item(1))
        best = infer_edges(node, InferenceParams())
        assert best is strong

    def test_confirmation_outweighs_moderate_history(self, graph):
        make_edge(graph, case(1), item(1), [True, True])
        confirmed = make_edge(graph, case(2), item(1), [True, True])
        node = graph.node(item(1))
        node.set_confirmed_parent(case(2), now=5)
        best = infer_edges(node, InferenceParams(beta=0.4))
        assert best is confirmed
        # the (1 - beta) memory bonus shows in the unnormalised confidence
        assert confirmed.confidence == pytest.approx(0.6 * 1.0 + 0.4 * 1.0)

    def test_beta_one_ignores_confirmation(self, graph):
        strong = make_edge(graph, case(1), item(1), [True] * 8)
        confirmed = make_edge(graph, case(2), item(1), [False] * 8)
        node = graph.node(item(1))
        node.set_confirmed_parent(case(2), now=5)
        best = infer_edges(node, InferenceParams(beta=1.0))
        assert best is strong

    def test_beta_zero_trusts_only_confirmation(self, graph):
        make_edge(graph, case(1), item(1), [True] * 8)
        confirmed = make_edge(graph, case(2), item(1), [False] * 8)
        node = graph.node(item(1))
        node.set_confirmed_parent(case(2), now=5)
        best = infer_edges(node, InferenceParams(beta=0.0))
        assert best is confirmed

    def test_uniform_when_no_evidence(self, graph):
        make_edge(graph, case(1), item(1), [])
        make_edge(graph, case(2), item(1), [])
        node = graph.node(item(1))
        best = infer_edges(node, InferenceParams())
        assert best is not None
        for edge in node.parents.values():
            assert edge.prob == pytest.approx(0.5)


class TestAdaptiveBeta:
    def test_fixed_beta_without_flag(self, graph):
        node = graph.get_or_create(item(1), 0)
        assert effective_beta(node, InferenceParams(beta=0.3)) == 0.3

    def test_without_confirmation_falls_back(self, graph):
        node = graph.get_or_create(item(1), 0)
        params = InferenceParams(beta=0.3, adaptive_beta=True)
        assert effective_beta(node, params) == 0.3

    def test_conflicts_raise_beta(self, graph):
        edge = make_edge(graph, case(1), item(1), [True, True, True])
        node = graph.node(item(1))
        node.set_confirmed_parent(case(1), now=0)
        node.confirmed_conflicts = 3
        params = InferenceParams(beta=0.4, adaptive_beta=True)
        # 3 conflicts vs 3 supportive observations -> beta = 0.5
        assert effective_beta(node, params) == pytest.approx(3 / (3 + edge.filled))

    def test_no_conflicts_keeps_beta_low(self, graph):
        make_edge(graph, case(1), item(1), [True] * 10)
        node = graph.node(item(1))
        node.set_confirmed_parent(case(1), now=0)
        params = InferenceParams(beta=0.4, adaptive_beta=True)
        assert effective_beta(node, params) == 0.0


class TestPruning:
    def test_weak_edges_listed(self, graph):
        make_edge(graph, case(1), item(1), [True] * 8)
        weak = make_edge(graph, case(2), item(1), [False] * 8)
        node = graph.node(item(1))
        best = infer_edges(node, InferenceParams())
        victims = prune_weak_parents(node, best, InferenceParams(prune_threshold=0.25))
        assert victims == [weak]

    def test_best_edge_never_pruned(self, graph):
        make_edge(graph, case(1), item(1), [False] * 8)
        node = graph.node(item(1))
        best = infer_edges(node, InferenceParams())
        victims = prune_weak_parents(node, best, InferenceParams(prune_threshold=0.9))
        assert victims == []

    def test_confirmed_edge_never_pruned(self, graph):
        make_edge(graph, case(1), item(1), [True] * 8)
        make_edge(graph, case(2), item(1), [False] * 8)
        node = graph.node(item(1))
        node.set_confirmed_parent(case(2), now=0)
        best = infer_edges(node, InferenceParams(beta=1.0))  # history decides
        victims = prune_weak_parents(node, best, InferenceParams(prune_threshold=0.9))
        assert victims == []

    def test_zero_threshold_disables_pruning(self, graph):
        make_edge(graph, case(1), item(1), [True] * 8)
        make_edge(graph, case(2), item(1), [False] * 8)
        node = graph.node(item(1))
        best = infer_edges(node, InferenceParams())
        assert prune_weak_parents(node, best, InferenceParams(prune_threshold=0.0)) == []

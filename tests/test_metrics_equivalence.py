"""Serial-vs-parallel telemetry equivalence (DESIGN.md §11).

The observability analogue of the stream byte-identity suite: on the
same seeded trace, the merged **counter** totals of a 2-worker
:class:`ParallelCoordinator` must render byte-identically to the serial
:class:`Coordinator`'s — zone labels included — because workers ship
cumulative registry snapshots that the coordinator merges, never sums
twice.  Gauges and timing histograms are excluded by construction
(:func:`counters_only`): wall-clock spans legitimately differ across
runs.  The property must also survive a ``fail_zone``/``recover_zone``
cycle, where the rebuilt zone's registry is seeded from its checkpoint.
"""

from __future__ import annotations

import pytest

from repro.distributed import Coordinator, ParallelCoordinator, partition_by_location
from repro.obs.metrics import MetricRegistry, counters_only, render_prometheus
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

ASSIGNMENT = {
    "inbound": ["entry-door", "receiving-belt"],
    "shelf-a": ["shelf-1", "shelf-2"],
    "shelf-b": ["shelf-3", "shelf-4"],
    "outbound": ["packaging-area", "exit-belt", "exit-door"],
}


@pytest.fixture(scope="module")
def sim():
    config = SimulationConfig(
        duration=150,
        pallet_period=100,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=10,
        num_shelves=4,
        shelving_time_mean=100,
        shelving_time_jitter=30,
        seed=19,
    )
    return WarehouseSimulator(config).run()


def _zones(sim):
    return partition_by_location(sim.layout.readers, ASSIGNMENT, sim.layout.registry)


def _counter_text(coordinator) -> str:
    """The deterministic projection of a coordinator's merged telemetry."""
    return render_prometheus(counters_only(coordinator.metrics_snapshot()))


def _drive(coordinator, epochs, fail_at=None, recover_at=None):
    for i, readings in enumerate(epochs):
        if i == fail_at:
            coordinator.fail_zone("shelf-a")
        if i == recover_at:
            coordinator.recover_zone("shelf-a")
        coordinator.process_epoch(readings)


def test_parallel_counters_match_serial(sim):
    epochs = list(sim.stream)

    serial = Coordinator(_zones(sim), metrics=MetricRegistry(), checkpoint_interval=20)
    _drive(serial, epochs)
    expected = _counter_text(serial)

    with ParallelCoordinator(
        _zones(sim), metrics=MetricRegistry(), checkpoint_interval=20, workers=2
    ) as parallel:
        _drive(parallel, epochs)
        assert _counter_text(parallel) == expected

    # sanity: the projection is non-trivial and zone-labelled
    assert 'spire_readings_total{zone="inbound"}' in expected
    assert "spire_coordinator_epochs_total" in expected


def test_counters_survive_failover_identically(sim):
    epochs = list(sim.stream)

    serial = Coordinator(_zones(sim), metrics=MetricRegistry(), checkpoint_interval=20)
    _drive(serial, epochs, fail_at=60, recover_at=90)
    expected = _counter_text(serial)

    with ParallelCoordinator(
        _zones(sim), metrics=MetricRegistry(), checkpoint_interval=20, workers=2
    ) as parallel:
        _drive(parallel, epochs, fail_at=60, recover_at=90)
        assert _counter_text(parallel) == expected


def test_parallel_snapshot_is_stable_after_close(sim):
    """The coordinator's snapshot comes from stored wire-shipped zone
    snapshots, so scraping still works after the workers are gone."""
    epochs = list(sim.stream)[:50]
    parallel = ParallelCoordinator(_zones(sim), metrics=MetricRegistry(), workers=2)
    with parallel:
        _drive(parallel, epochs)
        live = _counter_text(parallel)
    assert _counter_text(parallel) == live


def test_rerun_renders_byte_identical_counters(sim):
    """Same seed, same engine -> byte-identical counter exposition."""
    epochs = list(sim.stream)
    texts = []
    for _ in range(2):
        serial = Coordinator(_zones(sim), metrics=MetricRegistry())
        _drive(serial, epochs)
        texts.append(_counter_text(serial))
    assert texts[0] == texts[1]

"""Ablation — partial vs. complete inference scheduling (§IV-D).

The paper runs complete inference only every LCM(reader periods) epochs
and a cheap l-hop partial inference otherwise, arguing that inferring
"unknown" between slow-reader interrogations is wasted (and misleading)
work.  This ablation compares:

* the default schedule (partial with l = 1, complete on the LCM grid);
* a wider partial horizon (l = 2);
* complete inference every epoch (the expensive upper bound).

Reported: location/containment error and total inference wall-clock.
Expected shape: the default schedule costs a fraction of complete-every-
epoch inference at nearly the same accuracy.
"""

import pytest

from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_sim

VARIANTS = [
    ("default (l=1, LCM grid)", InferenceParams(partial_hops=1), None),
    ("wider partial (l=2)", InferenceParams(partial_hops=2), None),
    ("complete every epoch", InferenceParams(partial_hops=1), 1),
]


def run_experiment() -> dict:
    sim = get_sim(accuracy_config())
    exclude = frozenset({sim.layout.entry_door.color})
    results = {}
    for name, params, complete_period in VARIANTS:
        deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
        spire = Spire(deployment, params, complete_period=complete_period)
        accuracy = AccuracyAccumulator(policy=ScoringPolicy.ALL, exclude_colors=exclude)
        inference_seconds = 0.0
        for readings, snapshot in zip(sim.stream, sim.truth.snapshots):
            output = spire.process_epoch(readings)
            inference_seconds += output.inference_seconds
            accuracy.score_epoch(spire, snapshot)
        results[name] = (
            accuracy.location_error_rate,
            accuracy.containment_error_rate,
            inference_seconds,
        )
    return results


@pytest.mark.benchmark(group="ablation-partial")
def test_ablation_partial_vs_complete(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Ablation: inference schedule vs. accuracy and cost",
        ["schedule", "location error", "containment error", "inference s (total)"],
    )
    for name, _, _ in VARIANTS:
        table.add(name, *results[name])
    table.show()

    default = results["default (l=1, LCM grid)"]
    complete = results["complete every epoch"]
    # the scheduled variant is much cheaper ...
    assert default[2] < 0.7 * complete[2]
    # ... at nearly the same accuracy
    assert default[0] - complete[0] < 0.05
    assert default[1] - complete[1] < 0.05

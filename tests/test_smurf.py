"""Unit tests for the SMURF baseline."""

import pytest

from repro.baselines.smurf import SmurfParams, SmurfPipeline
from repro.core.capture import ReaderInfo
from repro.events.messages import EventKind
from repro.events.wellformed import check_well_formed
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import epoch_readings, item, make_deployment

DOCK = ReaderInfo(reader_id=0, color=0)
SHELF = ReaderInfo(reader_id=1, color=1, period=5)
EXIT = ReaderInfo(reader_id=2, color=2, is_exit=True)

DEPLOYMENT = make_deployment(DOCK, SHELF, EXIT)


class TestParams:
    def test_delta_bounds(self):
        with pytest.raises(ValueError):
            SmurfParams(delta=0.0)
        with pytest.raises(ValueError):
            SmurfParams(delta=1.0)

    def test_window_bounds(self):
        with pytest.raises(ValueError):
            SmurfParams(min_window=5, max_window=2)

    def test_initial_p_bounds(self):
        with pytest.raises(ValueError):
            SmurfParams(initial_p=0.0)


class TestSmoothing:
    def test_read_tag_is_present_at_reader_location(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        smurf.process_epoch(epoch_readings(0, {0: [item(1)]}))
        assert smurf.location_of(item(1)) == DOCK.color

    def test_gap_within_window_smoothed_over(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        smurf.process_epoch(epoch_readings(0, {0: [item(1)]}))
        smurf.process_epoch(epoch_readings(1, {0: [item(1)]}))
        smurf.process_epoch(epoch_readings(2, {0: [item(1)]}))
        # one missed epoch: window has grown enough to bridge it
        smurf.process_epoch(epoch_readings(3, {0: []}))
        assert smurf.location_of(item(1)) == DOCK.color

    def test_long_absence_declared_away(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        for now in range(3):
            smurf.process_epoch(epoch_readings(now, {0: [item(1)]}))
        for now in range(3, 60):
            smurf.process_epoch(epoch_readings(now, {0: []}))
        assert smurf.location_of(item(1)) == UNKNOWN_COLOR

    def test_location_transition_follows_readers(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        smurf.process_epoch(epoch_readings(0, {0: [item(1)]}))
        smurf.process_epoch(epoch_readings(1, {1: [item(1)]}))
        assert smurf.location_of(item(1)) == SHELF.color

    def test_window_grows_under_low_read_rate(self):
        smurf = SmurfPipeline(DEPLOYMENT, SmurfParams(min_window=1, max_window=16))
        # alternate read/miss: estimated p ~ 0.5 requires a bigger window
        for now in range(12):
            tags = [item(1)] if now % 2 == 0 else []
            smurf.process_epoch(epoch_readings(now, {0: tags}))
        assert smurf.tags[item(1)].window > 1

    def test_unknown_reader_rejected(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        with pytest.raises(KeyError):
            smurf.process_epoch(epoch_readings(0, {9: [item(1)]}))


class TestOutputStream:
    def test_output_is_level1_location_events_only(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        messages = []
        messages += smurf.process_epoch(epoch_readings(0, {0: [item(1)]}))
        messages += smurf.process_epoch(epoch_readings(1, {1: [item(1)]}))
        assert messages and all(m.kind.is_location for m in messages)
        check_well_formed(messages)

    def test_exit_reading_retires_tag(self):
        smurf = SmurfPipeline(DEPLOYMENT)
        smurf.process_epoch(epoch_readings(0, {0: [item(1)]}))
        messages = smurf.process_epoch(epoch_readings(1, {2: [item(1)]}))
        assert item(1) not in smurf.tags
        assert any(m.kind is EventKind.END_LOCATION for m in messages)

    def test_fluctuation_produces_extra_events(self):
        """SMURF's characteristic failure: consecutive misses beyond the
        window produce a premature away/return event pair (§VI-D)."""
        smurf = SmurfPipeline(DEPLOYMENT, SmurfParams(min_window=1, max_window=2))
        messages = []
        pattern = [True, True, False, False, False, True, True]
        for now, present in enumerate(pattern):
            tags = [item(1)] if present else []
            messages.extend(smurf.process_epoch(epoch_readings(now, {0: tags})))
        kinds = [m.kind for m in messages]
        assert kinds.count(EventKind.START_LOCATION) >= 2  # re-instated
        assert EventKind.MISSING in kinds
        check_well_formed(messages)

    def test_run_helper(self, small_sim):
        from repro.core.pipeline import Deployment

        deployment = Deployment.from_readers(small_sim.layout.readers)
        smurf = SmurfPipeline(deployment)
        messages = smurf.run(small_sim.stream)
        check_well_formed(messages)
        assert messages

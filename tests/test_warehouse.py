"""Integration tests for the warehouse simulator (§VI-A)."""

import pytest

from repro.model.locations import LocationKind, UNKNOWN_LOCATION
from repro.model.objects import PackagingLevel
from repro.readers.reader import ReaderKind
from repro.simulator.config import SimulationConfig
from repro.simulator.layout import WarehouseLayout
from repro.simulator.warehouse import WarehouseSimulator


def small_config(**overrides) -> SimulationConfig:
    base = dict(
        duration=400,
        pallet_period=100,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=1.0,
        shelf_read_period=10,
        num_shelves=2,
        shelving_time_mean=60,
        shelving_time_jitter=10,
        seed=5,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestLayout:
    def test_six_reader_groups(self):
        layout = WarehouseLayout.build(small_config())
        kinds = [r.kind for r in layout.readers]
        assert kinds.count(ReaderKind.SPECIAL) == 2
        assert kinds.count(ReaderKind.EXIT) == 1
        # entry + belt + 2 shelves + packaging + exit belt + exit door
        assert len(layout.readers) == 7

    def test_belt_singulation_levels(self):
        layout = WarehouseLayout.build(small_config())
        specials = [r for r in layout.readers if r.is_special]
        levels = {r.location.name: r.singulation_level for r in specials}
        assert levels["receiving-belt"] == PackagingLevel.CASE
        assert levels["exit-belt"] == PackagingLevel.PALLET

    def test_shelf_readers_use_shelf_period(self):
        layout = WarehouseLayout.build(small_config(shelf_read_period=30))
        shelf_readers = [
            r for r in layout.readers if r.location.kind is LocationKind.SHELF
        ]
        assert len(shelf_readers) == 2
        assert all(r.period == 30 for r in shelf_readers)

    def test_reader_lookup(self):
        layout = WarehouseLayout.build(small_config())
        assert layout.reader_by_id(0).location == layout.entry_door
        with pytest.raises(KeyError):
            layout.reader_by_id(99)


class TestLifecycle:
    def test_pallets_arrive_at_configured_rate(self):
        sim = WarehouseSimulator(small_config()).run()
        assert sim.pallets_arrived == 4  # epochs 0, 100, 200, 300

    def test_objects_flow_through_all_stages(self):
        sim = WarehouseSimulator(small_config()).run()
        layout = sim.layout
        visited = set()
        for snapshot in sim.truth.snapshots:
            for location in snapshot.locations.values():
                visited.add(location.name)
        for expected in (
            "entry-door",
            "receiving-belt",
            "shelf-1",
            "packaging-area",
            "exit-belt",
            "exit-door",
        ):
            assert expected in visited, f"no object ever visited {expected}"

    def test_pallets_get_reassembled_and_exit(self):
        sim = WarehouseSimulator(small_config()).run()
        assert sim.pallets_assembled >= 1
        assert sim.truth.exited  # someone left the building

    def test_containment_maintained_through_flow(self):
        sim = WarehouseSimulator(small_config()).run()
        # items keep their case container in every snapshot they appear in
        for snapshot in sim.truth.snapshots:
            for tag, location in snapshot.locations.items():
                if tag.level == PackagingLevel.ITEM and location is not UNKNOWN_LOCATION:
                    container = snapshot.containers.get(tag)
                    assert container is not None
                    assert container.level == PackagingLevel.CASE

    def test_world_invariants_hold_throughout(self):
        simulator = WarehouseSimulator(small_config())
        for epoch in range(200):
            simulator.step(epoch)
            if epoch % 25 == 0:
                simulator.world.check_invariants()

    def test_perfect_read_rate_reads_everything_present(self):
        sim = WarehouseSimulator(small_config(read_rate=1.0, shelf_read_period=1)).run()
        # at read rate 1 with every reader firing each epoch, every object in
        # a monitored location must appear in that epoch's readings
        for readings, snapshot in zip(sim.stream, sim.truth.snapshots):
            seen = readings.tags_seen()
            for tag, location in snapshot.locations.items():
                if location is not UNKNOWN_LOCATION:
                    assert tag in seen

    def test_low_read_rate_misses_readings(self):
        full = WarehouseSimulator(small_config(read_rate=1.0)).run()
        lossy = WarehouseSimulator(small_config(read_rate=0.6)).run()
        assert lossy.stream.total_readings < full.stream.total_readings

    def test_determinism_same_seed(self):
        a = WarehouseSimulator(small_config(read_rate=0.8, seed=9)).run()
        b = WarehouseSimulator(small_config(read_rate=0.8, seed=9)).run()
        assert a.stream.total_readings == b.stream.total_readings
        for ra, rb in zip(a.stream, b.stream):
            assert ra.by_reader == rb.by_reader

    def test_different_seeds_differ(self):
        a = WarehouseSimulator(small_config(read_rate=0.8, seed=1)).run()
        b = WarehouseSimulator(small_config(read_rate=0.8, seed=2)).run()
        assert any(
            ra.by_reader != rb.by_reader for ra, rb in zip(a.stream, b.stream)
        )

    def test_peak_objects_tracked(self):
        sim = WarehouseSimulator(small_config()).run()
        assert sim.peak_objects >= 1 + 2 * 5  # at least one full pallet


class TestAnomalies:
    def test_removals_injected_at_period(self):
        sim = WarehouseSimulator(small_config(anomaly_period=50)).run()
        assert len(sim.removals) >= 3
        assert all(e.epoch % 50 == 0 for e in sim.removals)

    def test_vanished_objects_marked_in_truth(self):
        sim = WarehouseSimulator(small_config(anomaly_period=50)).run()
        assert sim.truth.vanished
        for tag, epoch in sim.truth.vanished.items():
            snap = sim.truth.at_epoch(epoch)
            assert snap.location_of(tag) is UNKNOWN_LOCATION

    def test_vanished_objects_stop_being_read(self):
        sim = WarehouseSimulator(small_config(anomaly_period=50, read_rate=1.0)).run()
        event = sim.removals[0]
        for readings in sim.stream:
            if readings.epoch > event.epoch:
                assert event.tag not in readings.tags_seen()

    def test_no_anomalies_by_default(self):
        sim = WarehouseSimulator(small_config()).run()
        assert sim.removals == [] and not sim.truth.vanished

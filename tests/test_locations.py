"""Unit tests for locations and the location registry."""

import pytest

from repro.model.locations import (
    UNKNOWN_COLOR,
    UNKNOWN_LOCATION,
    Location,
    LocationKind,
    LocationRegistry,
)


class TestLocation:
    def test_equality_by_value(self):
        a = Location(0, "dock", LocationKind.ENTRY_DOOR)
        b = Location(0, "dock", LocationKind.ENTRY_DOOR)
        assert a == b

    def test_negative_color_rejected_for_known_locations(self):
        with pytest.raises(ValueError):
            Location(-2, "bad")

    def test_unknown_location_must_use_minus_one(self):
        with pytest.raises(ValueError):
            Location(3, "nowhere", LocationKind.UNKNOWN)

    def test_unknown_location_constant(self):
        assert UNKNOWN_LOCATION.color == UNKNOWN_COLOR == -1
        assert UNKNOWN_LOCATION.kind is LocationKind.UNKNOWN

    def test_is_exit(self):
        assert Location(1, "out", LocationKind.EXIT_DOOR).is_exit
        assert not Location(2, "shelf", LocationKind.SHELF).is_exit

    def test_str_is_name(self):
        assert str(Location(0, "dock")) == "dock"


class TestLocationRegistry:
    def test_create_assigns_sequential_colors(self):
        reg = LocationRegistry()
        a = reg.create("a")
        b = reg.create("b")
        assert (a.color, b.color) == (0, 1)

    def test_unknown_is_always_registered(self):
        reg = LocationRegistry()
        assert reg.by_color(-1) is UNKNOWN_LOCATION
        assert reg.by_name("unknown") is UNKNOWN_LOCATION

    def test_duplicate_color_rejected(self):
        reg = LocationRegistry()
        reg.add(Location(0, "a"))
        with pytest.raises(ValueError):
            reg.add(Location(0, "b"))

    def test_duplicate_name_rejected(self):
        reg = LocationRegistry()
        reg.add(Location(0, "a"))
        with pytest.raises(ValueError):
            reg.add(Location(1, "a"))

    def test_known_locations_excludes_unknown(self):
        reg = LocationRegistry()
        reg.create("a")
        assert all(loc.color >= 0 for loc in reg.known_locations())
        assert len(reg) == 1

    def test_lookup_by_color_and_name(self):
        reg = LocationRegistry()
        shelf = reg.create("shelf-1", LocationKind.SHELF)
        assert reg.by_color(shelf.color) == shelf
        assert reg.by_name("shelf-1") == shelf

    def test_contains(self):
        reg = LocationRegistry()
        shelf = reg.create("shelf-1")
        assert shelf in reg
        assert Location(99, "elsewhere") not in reg

    def test_iteration_in_color_order(self):
        reg = LocationRegistry()
        names = ["a", "b", "c"]
        for name in names:
            reg.create(name)
        assert [loc.name for loc in reg] == names

"""Physical-world model: objects, locations, and ground-truth state.

This package implements Section II of the paper: the *physical world* is a
set of RFID-tagged objects ``O``, a set of fixed locations ``L`` (plus the
special ``unknown`` location), and a discrete time domain.  The state of the
world at time ``t`` is captured by the boolean functions ``resides(o, l, t)``
and ``contained(o_i, o_j, l, t)``, which this package tracks exactly (the
*ground truth* against which SPIRE's probabilistic estimates are scored).
"""

from repro.model.objects import PackagingLevel, TagId, allocate_tags
from repro.model.locations import Location, LocationKind, UNKNOWN_LOCATION
from repro.model.world import PhysicalWorld, WorldError
from repro.model.truth import GroundTruthRecorder, TruthSnapshot

__all__ = [
    "PackagingLevel",
    "TagId",
    "allocate_tags",
    "Location",
    "LocationKind",
    "UNKNOWN_LOCATION",
    "PhysicalWorld",
    "WorldError",
    "GroundTruthRecorder",
    "TruthSnapshot",
]

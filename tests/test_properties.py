"""Property-based tests (hypothesis) on core invariants.

Covered invariants:

* :class:`PhysicalWorld` stays internally consistent under arbitrary valid
  mutation sequences;
* the graph stays structurally consistent under arbitrary reading streams,
  and no edge ever connects two differently-colored nodes after an epoch;
* both compressors always produce well-formed streams, for arbitrary
  per-object state histories;
* level-2 decompression reconstructs the same final per-object location
  state as direct level-1 compression (losslessness);
* the deduplicator never emits a tag twice in an epoch.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compression.decompress import decompress_stream
from repro.compression.level1 import RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.core.capture import GraphUpdater, ReaderInfo
from repro.core.graph import Graph
from repro.core.iterative import IterativeInference
from repro.core.params import InferenceParams
from repro.events.wellformed import check_well_formed, open_intervals
from repro.model.locations import UNKNOWN_COLOR, Location
from repro.model.objects import PackagingLevel, TagId
from repro.model.world import PhysicalWorld, WorldError
from repro.readers.dedup import Deduplicator
from repro.readers.stream import EpochReadings

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

LOCATIONS = [Location(i, f"loc-{i}") for i in range(4)]

tags = st.builds(
    TagId,
    level=st.sampled_from(list(PackagingLevel)),
    serial=st.integers(min_value=1, max_value=6),
)

items = st.builds(TagId, level=st.just(PackagingLevel.ITEM), serial=st.integers(1, 6))
cases = st.builds(TagId, level=st.just(PackagingLevel.CASE), serial=st.integers(1, 4))


@st.composite
def world_scripts(draw):
    """A sequence of (op, args) world mutations; invalid ones are skipped."""
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n):
        op = draw(
            st.sampled_from(["add", "move", "contain", "uncontain", "vanish", "remove"])
        )
        ops.append(
            (
                op,
                draw(tags),
                draw(tags),
                draw(st.sampled_from(LOCATIONS)),
            )
        )
    return ops


@st.composite
def reading_streams(draw):
    """A short stream of epoch readings over 2 readers and a small tag pool."""
    epochs = draw(st.integers(min_value=1, max_value=12))
    pool = draw(st.lists(tags, min_size=1, max_size=8, unique=True))
    stream = []
    for epoch in range(epochs):
        readings = EpochReadings(epoch=epoch)
        for reader_id in (0, 1):
            observed = draw(st.lists(st.sampled_from(pool), max_size=5, unique=True))
            readings.add(reader_id, observed)
        stream.append(readings)
    return stream


@st.composite
def state_histories(draw):
    """Per-epoch (tag, location, container) state reports for compressors.

    Containers are only ever assigned level-consistently and the reported
    child location always equals the container's (the §IV-E postcondition
    the compressors assume).
    """
    epochs = draw(st.integers(min_value=1, max_value=15))
    pool_items = draw(st.lists(items, min_size=1, max_size=3, unique=True))
    pool_cases = draw(st.lists(cases, min_size=1, max_size=2, unique=True))
    history = []
    for epoch in range(epochs):
        case_state = {}
        rows = []
        for tag in pool_cases:
            loc = draw(st.integers(min_value=-1, max_value=3))
            case_state[tag] = loc
            rows.append((tag, loc, None))
        for tag in pool_items:
            container = draw(st.sampled_from([None] + pool_cases))
            if container is not None:
                loc = case_state[container]
            else:
                loc = draw(st.integers(min_value=-1, max_value=3))
            rows.append((tag, loc, container))
        history.append((epoch, rows))
    return history


# ---------------------------------------------------------------------------
# world invariants
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(world_scripts())
def test_world_invariants_under_arbitrary_mutations(script):
    world = PhysicalWorld()
    for op, a, b, location in script:
        try:
            if op == "add":
                world.add_object(a, location)
            elif op == "move":
                world.move(a, location)
            elif op == "contain":
                world.contain(a, b)
            elif op == "uncontain":
                world.uncontain(a)
            elif op == "vanish":
                world.vanish(a)
            elif op == "remove":
                world.remove_object(a)
        except WorldError:
            pass  # invalid mutations must leave the world untouched
    world.check_invariants()


# ---------------------------------------------------------------------------
# graph invariants
# ---------------------------------------------------------------------------

READERS = {
    0: ReaderInfo(reader_id=0, color=0),
    1: ReaderInfo(reader_id=1, color=1),
}


@settings(max_examples=60, deadline=None)
@given(reading_streams())
def test_graph_invariants_under_arbitrary_streams(stream):
    params = InferenceParams()
    graph = Graph()
    updater = GraphUpdater(graph, params)
    dedup = Deduplicator()
    for readings in stream:
        clean = dedup.process(readings)
        updater.apply_epoch(clean, READERS, readings.epoch)
        graph.check_invariants()


@settings(max_examples=40, deadline=None)
@given(reading_streams())
def test_inference_covers_every_node_in_complete_mode(stream):
    params = InferenceParams()
    graph = Graph()
    updater = GraphUpdater(graph, params)
    inference = IterativeInference(graph, params)
    dedup = Deduplicator()
    for readings in stream:
        updater.apply_epoch(dedup.process(readings), READERS, readings.epoch)
        result = inference.run(readings.epoch, complete=True)
        assert set(result.estimates) == {node.tag for node in graph.nodes()}
        for estimate in result:
            assert estimate.location_prob >= 0.0
        graph.check_invariants()


# ---------------------------------------------------------------------------
# compression properties
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(state_histories())
def test_level1_always_well_formed(history):
    compressor = RangeCompressor()
    out = []
    for epoch, rows in history:
        for tag, loc, container in rows:
            out.extend(compressor.observe(tag, loc, container, epoch))
    check_well_formed(out)


@settings(max_examples=80, deadline=None)
@given(state_histories())
def test_level2_always_well_formed(history):
    compressor = ContainmentCompressor()
    out = []
    for epoch, rows in history:
        for tag, loc, container in rows:
            out.extend(compressor.observe(tag, loc, container, epoch))
    check_well_formed(out)


def _final_state(messages):
    states = open_intervals(messages)
    return {
        tag: state.open_location[0]
        for tag, state in states.items()
        if state.open_location is not None
    }


@settings(max_examples=80, deadline=None)
@given(state_histories())
def test_level2_decompression_is_lossless(history):
    """decompress(level2(history)) ends in the same per-object location
    state as level1(history)."""
    l1 = RangeCompressor()
    l2 = ContainmentCompressor()
    msgs1, msgs2 = [], []
    for epoch, rows in history:
        for tag, loc, container in rows:
            msgs1.extend(l1.observe(tag, loc, container, epoch))
            msgs2.extend(l2.observe(tag, loc, container, epoch))
    decompressed = decompress_stream(msgs2)
    check_well_formed(decompressed)
    assert _final_state(decompressed) == _final_state(msgs1)


@settings(max_examples=60, deadline=None)
@given(state_histories())
def test_level2_location_events_bounded_by_level1_plus_sync(history):
    """Level-2 emits at most level-1's location events plus a bounded sync
    cost (up to two messages per containment transition, for alignment and
    catch-up).  For stable containment this means strictly fewer events —
    the Fig. 11 benchmarks check the actual reduction on realistic traces.
    """
    l1 = RangeCompressor()
    l2 = ContainmentCompressor()
    count1 = count2 = transitions = 0
    for epoch, rows in history:
        for tag, loc, container in rows:
            msgs1 = l1.observe(tag, loc, container, epoch)
            msgs2 = l2.observe(tag, loc, container, epoch)
            count1 += sum(1 for m in msgs1 if m.kind.is_location)
            count2 += sum(1 for m in msgs2 if m.kind.is_location)
            transitions += sum(1 for m in msgs2 if m.kind.is_containment)
    assert count2 <= count1 + 2 * transitions


# ---------------------------------------------------------------------------
# dedup properties
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(reading_streams())
def test_dedup_emits_each_tag_at_most_once_per_epoch(stream):
    dedup = Deduplicator()
    for readings in stream:
        clean = dedup.process(readings)
        seen = [tag for tags in clean.by_reader.values() for tag in tags]
        assert len(seen) == len(set(seen))
        assert set(seen) == readings.tags_seen()

"""Structured warnings and the quarantine for degraded ingestion.

The fault layer never raises on bad input; it records what it absorbed.
Every anomaly the resilient front-end (or the zone coordinator) handles —
a duplicate batch, a late batch behind the watermark, readings from an
unknown reader, a synthesized gap, a reader going silent or returning —
becomes one :class:`IngestWarning`, and any readings that had to be
withheld from the pipeline land in a :class:`Quarantine` next to the
warning that explains them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.model.objects import TagId


class WarningKind:
    """Warning kinds emitted by the fault layer (plain strings, stable API)."""

    DUPLICATE_BATCH = "duplicate_batch"
    LATE_BATCH = "late_batch"
    GAP_SYNTHESIZED = "gap_synthesized"
    UNKNOWN_READER = "unknown_reader"
    READER_SILENT = "reader_silent"
    READER_RECOVERED = "reader_recovered"
    UNMAPPED_READER = "unmapped_reader"
    ZONE_FAILED = "zone_failed"
    ZONE_RECOVERED = "zone_recovered"
    ZONE_REHOMED = "zone_rehomed"
    EMPTY_ZONE = "empty_zone"
    SUBSCRIPTION_OVERFLOW = "subscription_overflow"
    SUBSCRIPTION_EVICTED = "subscription_evicted"
    WORKER_LOST = "worker_lost"
    WORKER_ZOMBIE = "worker_zombie"


@dataclass(frozen=True)
class IngestWarning:
    """One absorbed input anomaly.

    Attributes:
        kind: One of the :class:`WarningKind` constants.
        epoch: Epoch the anomaly was detected at (the *processing* epoch for
            late/duplicate batches, which may differ from the batch's own).
        reader_id: Offending reader, when the anomaly is reader-scoped.
        detail: Human-readable elaboration (epoch ranges, counts, zone ids).
    """

    kind: str
    epoch: int
    reader_id: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        reader = f" reader={self.reader_id}" if self.reader_id is not None else ""
        detail = f": {self.detail}" if self.detail else ""
        return f"[{self.kind} @ {self.epoch}{reader}]{detail}"


@dataclass
class QuarantinedReading:
    """One reading withheld from the pipeline, with its provenance."""

    tag: TagId
    reader_id: int
    epoch: int
    reason: str


@dataclass
class Quarantine:
    """Collects warnings and withheld readings for later inspection."""

    warnings: list[IngestWarning] = field(default_factory=list)
    readings: list[QuarantinedReading] = field(default_factory=list)
    #: telemetry registry (see :mod:`repro.obs`); ``None`` keeps the
    #: quarantine metrics-free with zero overhead
    _metrics: object | None = None

    def attach_metrics(self, registry) -> None:
        """Mirror warnings/held readings into ``spire_warnings_total{kind}``
        and ``spire_quarantined_readings_total{kind}`` on ``registry``."""
        self._metrics = registry if registry is not None and registry.enabled else None

    def warn(
        self,
        kind: str,
        epoch: int,
        reader_id: int | None = None,
        detail: str = "",
    ) -> IngestWarning:
        warning = IngestWarning(kind=kind, epoch=epoch, reader_id=reader_id, detail=detail)
        self.warnings.append(warning)
        if self._metrics is not None:
            self._metrics.counter(
                "spire_warnings_total", "Structured ingest warnings by kind", kind=kind
            ).inc()
        return warning

    def hold(self, tag: TagId, reader_id: int, epoch: int, reason: str) -> None:
        self.readings.append(
            QuarantinedReading(tag=tag, reader_id=reader_id, epoch=epoch, reason=reason)
        )
        if self._metrics is not None:
            self._metrics.counter(
                "spire_quarantined_readings_total",
                "Readings withheld from the pipeline by kind",
                kind=reason,
            ).inc()

    def counts(self) -> dict[str, int]:
        """Warning tally by kind (for reports and the chaos CLI)."""
        return dict(Counter(w.kind for w in self.warnings))

    def __len__(self) -> int:
        return len(self.warnings)

"""Warehouse layout: locations and the six reader groups of Section VI-A.

Reader group numbering follows the paper:

1. entry door, 2. receiving belt, 3. shelves, 4. packaging area,
5. exit belt, 6. exit door.

The receiving and exit belts carry *special* readers (they scan one
container at a time, confirming containment); the exit door reader marks a
proper exit channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.locations import Location, LocationKind, LocationRegistry
from repro.model.objects import PackagingLevel
from repro.readers.reader import Reader, ReaderKind
from repro.simulator.config import SimulationConfig


@dataclass
class WarehouseLayout:
    """Locations and readers of one simulated warehouse."""

    registry: LocationRegistry
    entry_door: Location
    receiving_belt: Location
    shelves: list[Location]
    packaging: Location
    exit_belt: Location
    exit_door: Location
    readers: list[Reader] = field(default_factory=list)

    @classmethod
    def build(cls, config: SimulationConfig) -> "WarehouseLayout":
        """Construct the standard six-group layout for ``config``."""
        registry = LocationRegistry()
        entry_door = registry.create("entry-door", LocationKind.ENTRY_DOOR)
        receiving_belt = registry.create("receiving-belt", LocationKind.BELT)
        shelves = [
            registry.create(f"shelf-{i + 1}", LocationKind.SHELF)
            for i in range(config.num_shelves)
        ]
        packaging = registry.create("packaging-area", LocationKind.PACKAGING)
        exit_belt = registry.create("exit-belt", LocationKind.BELT)
        exit_door = registry.create("exit-door", LocationKind.EXIT_DOOR)

        layout = cls(
            registry=registry,
            entry_door=entry_door,
            receiving_belt=receiving_belt,
            shelves=shelves,
            packaging=packaging,
            exit_belt=exit_belt,
            exit_door=exit_door,
        )

        fast = config.non_shelf_read_period
        next_id = 0

        def add(
            location: Location,
            kind: ReaderKind,
            period: int,
            singulation: PackagingLevel | None = None,
        ) -> None:
            nonlocal next_id
            layout.readers.append(
                Reader(
                    reader_id=next_id,
                    location=location,
                    period=period,
                    read_rate=config.read_rate_for(location.kind),
                    kind=kind,
                    singulation_level=singulation,
                )
            )
            next_id += 1

        add(entry_door, ReaderKind.NORMAL, fast)                             # group 1
        add(receiving_belt, ReaderKind.SPECIAL, fast, PackagingLevel.CASE)   # group 2
        for shelf in shelves:                                                # group 3
            add(shelf, ReaderKind.NORMAL, config.shelf_read_period)
        add(packaging, ReaderKind.NORMAL, fast)                              # group 4
        add(exit_belt, ReaderKind.SPECIAL, fast, PackagingLevel.PALLET)      # group 5
        add(exit_door, ReaderKind.EXIT, fast)                                # group 6
        return layout

    def reader_by_id(self, reader_id: int) -> Reader:
        """Look up a reader; raises ``KeyError`` for unknown ids."""
        for reader in self.readers:
            if reader.reader_id == reader_id:
                return reader
        raise KeyError(f"no reader with id {reader_id}")

    @property
    def special_reader_ids(self) -> frozenset[int]:
        """Reader ids of the containment-confirming belt readers."""
        return frozenset(r.reader_id for r in self.readers if r.is_special)

    @property
    def exit_reader_ids(self) -> frozenset[int]:
        """Reader ids of the proper-exit-channel readers."""
        return frozenset(r.reader_id for r in self.readers if r.is_exit)

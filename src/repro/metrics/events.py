"""Event-stream accuracy: precision / recall / F-measure (Expt 7).

The reference stream is the ground truth pushed through the same level-1
range compressor SPIRE uses ("a compressed event stream of the ground
truth", §VI-D).  An output event matches a reference event when kind,
object and place/container agree and the occurrence times are within a
tolerance window — missed readings and finite reader frequencies shift
detection by a bounded number of epochs, and the paper's readers cannot
observe a transition before they interrogate.  Matching is greedy one-to-one
in time order.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.events.messages import EventKind, EventMessage
from repro.model.objects import TagId


@dataclass(frozen=True)
class EventMatch:
    """Result of matching an output stream against a reference stream."""

    matched: int
    output_total: int
    reference_total: int

    @property
    def precision(self) -> float:
        """Fraction of output events present in the reference stream."""
        return self.matched / self.output_total if self.output_total else 0.0

    @property
    def recall(self) -> float:
        """Fraction of reference events recovered in the output."""
        return self.matched / self.reference_total if self.reference_total else 0.0

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall (0 when both empty)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def _occurrence_time(msg: EventMessage) -> int:
    """The epoch at which the state change the message reports happened."""
    if msg.kind in (EventKind.END_LOCATION, EventKind.END_CONTAINMENT):
        return int(msg.ve)
    return msg.vs


def _key(msg: EventMessage) -> tuple:
    target: TagId | int | None = msg.container if msg.kind.is_containment else msg.place
    return (msg.kind, msg.obj, target)


def match_events(
    output: Iterable[EventMessage],
    reference: Iterable[EventMessage],
    tolerance: int,
) -> EventMatch:
    """Greedy one-to-one matching of ``output`` against ``reference``.

    Both streams may contain any mix of event kinds; callers typically
    filter first (e.g. :func:`repro.metrics.sizing.location_only` for the
    SMURF comparison, which has no containment events).
    """
    ref_times: dict[tuple, list[int]] = defaultdict(list)
    reference_total = 0
    for msg in reference:
        insort(ref_times[_key(msg)], _occurrence_time(msg))
        reference_total += 1

    output_list = sorted(output, key=_occurrence_time)
    matched = 0
    for msg in output_list:
        times = ref_times.get(_key(msg))
        if not times:
            continue
        t = _occurrence_time(msg)
        # earliest unmatched reference occurrence within the tolerance
        best_index = None
        for i, ref_t in enumerate(times):
            if ref_t > t + tolerance:
                break
            if abs(ref_t - t) <= tolerance:
                best_index = i
                break
        if best_index is not None:
            times.pop(best_index)
            matched += 1

    return EventMatch(
        matched=matched,
        output_total=len(output_list),
        reference_total=reference_total,
    )


def f_measure(
    output: Iterable[EventMessage],
    reference: Iterable[EventMessage],
    tolerance: int,
) -> float:
    """Convenience wrapper returning only the F-measure."""
    return match_events(output, reference, tolerance).f_measure

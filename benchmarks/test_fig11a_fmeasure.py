"""Fig. 11(a) — F-measure of location events: SPIRE vs. SMURF (Expt 7).

Reproduces: event-level precision/recall/F-measure (vs. the level-1
compressed ground-truth stream) for location events, as the read rate
sweeps 0.5 -> 1.0.

Measured shape (see EXPERIMENTS.md): SPIRE dominates on *recall* at every
read rate — containment propagation and the fading-color model recover
state changes SMURF misses outright — while our SMURF implementation
(π-estimator window growth with a conservative 2σ transition test, a
stronger baseline than the paper describes) holds slightly better
precision, yielding rough F-measure parity on this steady-flow workload
instead of the paper's clear SPIRE win.  On transition-rich workloads
(shorter shelving, faster reader cadence) SPIRE wins the F-measure
outright — asserted in tests/test_integration.py.
"""

import pytest

from repro.metrics.events import match_events
from repro.metrics.sizing import location_only

from benchmarks._shared import (
    Table,
    get_smurf,
    get_spire,
    get_truth_stream,
    output_config,
)

READ_RATES = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def run_experiment() -> dict:
    results = {}
    for rate in READ_RATES:
        config = output_config(rate)
        reference = location_only(get_truth_stream(config))
        tolerance = 2 * config.shelf_read_period
        spire = match_events(
            location_only(get_spire(config, compression_level=1, score=False).messages),
            reference,
            tolerance,
        )
        smurf = match_events(
            location_only(get_smurf(config, score=False).messages), reference, tolerance
        )
        results[rate] = (spire, smurf)
    return results


@pytest.mark.benchmark(group="fig11a")
def test_fig11a_fmeasure_spire_vs_smurf(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 11(a): location-event accuracy vs. read rate",
        ["read rate", "SPIRE F", "SPIRE P", "SPIRE R", "SMURF F", "SMURF P", "SMURF R"],
    )
    for rate in READ_RATES:
        spire, smurf = results[rate]
        table.add(
            rate,
            spire.f_measure, spire.precision, spire.recall,
            smurf.f_measure, smurf.precision, smurf.recall,
        )
    table.show()

    for rate in READ_RATES:
        spire, smurf = results[rate]
        # SPIRE recovers more of the true state changes at every read rate
        assert spire.recall >= smurf.recall - 1e-9, f"recall lost at rate {rate}"
        # and stays F-competitive with a strong smoothing baseline
        assert spire.f_measure >= smurf.f_measure - 0.05, f"F gap too large at {rate}"
    # the recall advantage widens as readings get lossier
    recall_gap_low = results[0.5][0].recall - results[0.5][1].recall
    recall_gap_high = results[1.0][0].recall - results[1.0][1].recall
    assert recall_gap_low >= recall_gap_high - 1e-9

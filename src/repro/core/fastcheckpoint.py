"""Fast, slots-aware binary serialization of a running :class:`Spire`.

The pickle-based checkpoint format (:mod:`repro.core.checkpoint`) walks the
whole object graph recursively.  At production scale that is slow *and*
fragile: the node ↔ edge reference chains of a 6k-node containment graph
exceed CPython's default recursion limit, so ``pickle.dump`` raises
``RecursionError`` exactly when checkpoints matter most.  This module
replaces the whole-object round-trip with a versioned, field-batched
encoder that writes the ``__slots__`` of the hot objects (graph nodes,
edges, estimates, compressor states) into flat ``struct``/``array``
sections — no recursion, a few Python-level loops, and a fraction of the
bytes.

Only the small configuration objects (deployment, inference params, the
reader-health monitor) still go through pickle, inside one length-prefixed
blob; they are bounded by the reader count, not the object population.

**Fidelity contract**: decoding must reproduce the source substrate
*bit-for-bit* with respect to future output — including dict insertion
orders.  ``node.parents`` / ``node.children`` iteration order feeds float
accumulation in edge and node inference, so edges are stored in
children-insertion order (restoring every ``children`` dict) plus a
per-node parent-key list (restoring every ``parents`` dict).  Sets
(``_colored``, ``_dirty``, the ``_by_level_color`` index) are rebuilt from
node state; their iteration order is identity-based and never reaches the
output (guarded by the equivalence tests).
"""

from __future__ import annotations

import pickle
import struct
import sys
from array import array

from repro.compression.level1 import ObjectState, RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.core.graph import GraphEdge, GraphNode
from repro.core.pipeline import CurrentEstimate, Spire
from repro.model.objects import TagId

#: bump when the section layout changes shape
FAST_FORMAT_VERSION = 1

#: sentinel for "None" in signed int fields (colors are small ints and
#: UNKNOWN_COLOR is -1, so any huge negative works)
_NONE = -(1 << 62)

#: edge history bit-vectors are split into two signed-63-bit halves; the
#: default history size is 32 bits, so this bound is far from real configs
_MAX_HISTORY_BITS = 124
_HIST_LO_BITS = 62
_HIST_LO_MASK = (1 << _HIST_LO_BITS) - 1

_HEADER = struct.Struct("<BB")  # format version, byteorder (1 = little)
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_NODE_INTS = 12
_EDGE_INTS = 7
_ESTIMATE_INTS = 5
_STATE_INTS = 7

_BYTEORDER_CODE = 1 if sys.byteorder == "little" else 0


class FastCheckpointError(ValueError):
    """Raised when a substrate cannot be encoded or bytes cannot be decoded."""


def _opt(value: int | None) -> int:
    return _NONE if value is None else value


def _opt_back(value: int) -> int | None:
    return None if value == _NONE else value


def _opt_key(tag: TagId | None) -> int:
    return 0 if tag is None else tag.key()


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _write_ints(out: bytearray, count: int, ints: array) -> None:
    out += _U64.pack(count)
    out += ints.tobytes()


def _write_floats(out: bytearray, floats: array) -> None:
    out += floats.tobytes()


def encode_spire(spire: Spire) -> bytes:
    """Serialise ``spire`` into the fast binary checkpoint payload."""
    params = spire.params
    if params.history_size > _MAX_HISTORY_BITS:
        raise FastCheckpointError(
            f"history_size {params.history_size} exceeds the fast-codec bound "
            f"of {_MAX_HISTORY_BITS} bits"
        )
    compressor = spire.compressor
    if isinstance(compressor, ContainmentCompressor):
        inner = compressor._inner
    elif isinstance(compressor, RangeCompressor):
        inner = compressor
    else:
        raise FastCheckpointError(
            f"unsupported compressor type {type(compressor).__name__}"
        )

    graph = spire.graph
    config = {
        "deployment": spire.deployment,
        "params": params,
        "compression_level": spire.compression_level,
        "complete_period": spire._complete_period,
        "retention": spire._retention,
        "incremental": spire.incremental,
        "health": spire.health,
        "epochs_processed": spire._epochs_processed,
        "last_epoch": spire._last_epoch,
        "last_suppressed": spire._last_suppressed,
        "cache_hits": spire.inference.cache_hits,
        "cache_misses": spire.inference.cache_misses,
        "inference_suppressed": spire.inference.suppressed_colors,
        "updater_suppressed": spire.updater.suppressed_colors,
        "updater_exiting": sorted(spire.updater.exiting),
        "compressor_emit": (inner._emit_location, inner._emit_containment),
        "expiry_seq": graph._expiry_seq,
    }
    blob = pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)

    out = bytearray()
    out += _HEADER.pack(FAST_FORMAT_VERSION, _BYTEORDER_CODE)
    out += _U64.pack(len(blob))
    out += blob

    # --- nodes (graph insertion order) ---------------------------------
    nodes = list(graph._nodes.values())
    ints = array("q")
    floats = array("d")
    ext = ints.extend
    for n in nodes:
        ext((
            n.tag.key(),
            _opt(n.color),
            _opt(n.prev_color),
            _opt(n.recent_color),
            n.seen_at,
            _opt_key(n.confirmed_parent),
            n.confirmed_at,
            n.confirmed_conflicts,
            n.created_at,
            n.version,
            _opt_key(n.decision_container),
            n.decision_version,
        ))
        floats.append(n.decision_prob)
    _write_ints(out, len(nodes), ints)
    _write_floats(out, floats)

    # --- edges (children-insertion order per parent, parents in node
    # order) + per-node parents-insertion order ------------------------
    ints = array("q")
    floats = array("d")
    ext = ints.extend
    edge_count = 0
    for parent in nodes:
        pk = parent.tag.key()
        for edge in parent.children.values():
            history = edge.history
            ext((
                pk,
                edge.child.tag.key(),
                history & _HIST_LO_MASK,
                history >> _HIST_LO_BITS,
                edge.filled,
                edge.created_at,
                edge.update_time,
            ))
            floats.extend((edge.prob, edge.confidence))
            edge_count += 1
    _write_ints(out, edge_count, ints)
    _write_floats(out, floats)

    order = array("q")
    ext = order.extend
    for n in nodes:
        parents = n.parents
        ext((len(parents),))
        if parents:
            ext(t.key() for t in parents)
    _write_ints(out, len(order), order)

    # --- graph side state ----------------------------------------------
    _write_ints(
        out,
        len(graph._dirty),
        array("q", sorted(n.tag.key() for n in graph._dirty)),
    )
    heap = array("q")
    ext = heap.extend
    for at, seq, tag in graph._expiry:
        ext((at, seq, tag.key()))
    _write_ints(out, len(graph._expiry), heap)
    holds = array("q")
    ext = holds.extend
    for tag, until in graph._expiry_hold.items():
        ext((tag.key(), until))
    _write_ints(out, len(graph._expiry_hold), holds)

    # --- estimate store (insertion order) ------------------------------
    ints = array("q")
    ext = ints.extend
    for tag, est in spire.estimates.items():
        ext((
            tag.key(),
            est.location,
            _opt_key(est.container),
            1 if est.observed else 0,
            est.updated_at,
        ))
    _write_ints(out, len(spire.estimates), ints)

    # --- compressor states (insertion order) ---------------------------
    ints = array("q")
    ext = ints.extend
    for tag, state in inner._states.items():
        loc = state.location
        cont = state.containment
        ext((
            tag.key(),
            loc[0] if loc is not None else _NONE,
            loc[1] if loc is not None else _NONE,
            _opt(state.last_place),
            1 if state.is_missing else 0,
            cont[0].key() if cont is not None else 0,
            cont[1] if cont is not None else _NONE,
        ))
    _write_ints(out, len(inner._states), ints)

    # --- dedup sticky assignments (insertion order) --------------------
    ints = array("q")
    ext = ints.extend
    for tag, reader_id in spire.dedup._last_reader.items():
        ext((tag.key(), reader_id))
    _write_ints(out, len(spire.dedup._last_reader), ints)

    return bytes(out)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


class _Cursor:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def u64(self) -> int:
        (value,) = _U64.unpack_from(self.data, self.offset)
        self.offset += 8
        return value

    def ints(self, count: int) -> array:
        arr = array("q")
        end = self.offset + 8 * count
        arr.frombytes(self.data[self.offset : end])
        self.offset = end
        return arr

    def floats(self, count: int) -> array:
        arr = array("d")
        end = self.offset + 8 * count
        arr.frombytes(self.data[self.offset : end])
        self.offset = end
        return arr

    def blob(self) -> bytes:
        length = self.u64()
        end = self.offset + length
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk


def decode_spire(data: bytes) -> Spire:
    """Rebuild a substrate from :func:`encode_spire` output."""
    if len(data) < _HEADER.size:
        raise FastCheckpointError("truncated fast checkpoint (no header)")
    version, byteorder = _HEADER.unpack_from(data, 0)
    if version != FAST_FORMAT_VERSION:
        raise FastCheckpointError(
            f"fast checkpoint format {version} incompatible with "
            f"{FAST_FORMAT_VERSION}"
        )
    if byteorder != _BYTEORDER_CODE:
        raise FastCheckpointError(
            "fast checkpoint written on a machine with different byte order"
        )
    cur = _Cursor(data)
    cur.offset = _HEADER.size
    try:
        config = pickle.loads(cur.blob())
    except Exception as exc:
        raise FastCheckpointError(f"corrupt config blob: {exc}") from exc

    spire = Spire(
        config["deployment"],
        config["params"],
        compression_level=config["compression_level"],
        complete_period=config["complete_period"],
        health=config["health"],
        incremental=config["incremental"],
        retention_epochs=config["retention"],
    )
    spire._epochs_processed = config["epochs_processed"]
    spire._last_epoch = config["last_epoch"]
    spire._last_suppressed = config["last_suppressed"]
    spire.inference.cache_hits = config["cache_hits"]
    spire.inference.cache_misses = config["cache_misses"]
    spire.inference.suppressed_colors = config["inference_suppressed"]
    spire.updater.suppressed_colors = config["updater_suppressed"]
    spire.updater.exiting = set(config["updater_exiting"])
    emit_location, emit_containment = config["compressor_emit"]
    if spire.compression_level == 1 and (emit_location, emit_containment) != (True, True):
        spire.compressor = RangeCompressor(emit_location, emit_containment)
    inner = (
        spire.compressor._inner
        if isinstance(spire.compressor, ContainmentCompressor)
        else spire.compressor
    )

    from_key = TagId.from_key
    graph = spire.graph
    graph._expiry_seq = config["expiry_seq"]

    # --- nodes ----------------------------------------------------------
    node_count = cur.u64()
    ints = cur.ints(node_count * _NODE_INTS)
    floats = cur.floats(node_count)
    nodes_by_key: dict[int, GraphNode] = {}
    graph_nodes = graph._nodes
    colored = graph._colored
    by_level_color = graph._by_level_color
    new_node = GraphNode.__new__
    base = 0
    for i in range(node_count):
        key = ints[base]
        tag = from_key(key)
        node = new_node(GraphNode)
        node.tag = tag
        node.level = tag.level.value
        node.color = _opt_back(ints[base + 1])
        node.prev_color = _opt_back(ints[base + 2])
        node.recent_color = _opt_back(ints[base + 3])
        node.seen_at = ints[base + 4]
        cp = ints[base + 5]
        node.confirmed_parent = from_key(cp) if cp else None
        node.confirmed_at = ints[base + 6]
        node.confirmed_conflicts = ints[base + 7]
        node.created_at = ints[base + 8]
        node.version = ints[base + 9]
        dc = ints[base + 10]
        node.decision_container = from_key(dc) if dc else None
        node.decision_version = ints[base + 11]
        node.decision_prob = floats[i]
        node.parents = {}
        node.children = {}
        graph_nodes[tag] = node
        nodes_by_key[key] = node
        if node.color is not None:
            colored.add(node)
            by_level_color[node.level].setdefault(node.color, set()).add(node)
        base += _NODE_INTS
    graph._prev_colored = [n for n in graph_nodes.values() if n.prev_color is not None]

    # --- edges ----------------------------------------------------------
    edge_count = cur.u64()
    ints = cur.ints(edge_count * _EDGE_INTS)
    floats = cur.floats(edge_count * 2)
    edges_by_pair: dict[tuple[int, int], GraphEdge] = {}
    new_edge = GraphEdge.__new__
    base = 0
    fbase = 0
    for _ in range(edge_count):
        pk = ints[base]
        ck = ints[base + 1]
        parent = nodes_by_key[pk]
        child = nodes_by_key[ck]
        edge = new_edge(GraphEdge)
        edge.parent = parent
        edge.child = child
        edge.history = (ints[base + 3] << _HIST_LO_BITS) | ints[base + 2]
        edge.filled = ints[base + 4]
        edge.created_at = ints[base + 5]
        edge.update_time = ints[base + 6]
        edge.prob = floats[fbase]
        edge.confidence = floats[fbase + 1]
        parent.children[child.tag] = edge
        edges_by_pair[(pk, ck)] = edge
        base += _EDGE_INTS
        fbase += 2
    graph._edge_count = edge_count

    # parents dicts, in their original insertion order
    order_len = cur.u64()
    order = cur.ints(order_len)
    pos = 0
    for node in graph_nodes.values():
        count = order[pos]
        pos += 1
        ck = node.tag.key()
        parents = node.parents
        for _ in range(count):
            pk = order[pos]
            pos += 1
            edge = edges_by_pair[(pk, ck)]
            parents[edge.parent.tag] = edge

    # --- graph side state ----------------------------------------------
    dirty_count = cur.u64()
    dirty = cur.ints(dirty_count)
    graph._dirty = {nodes_by_key[key] for key in dirty}
    heap_count = cur.u64()
    heap = cur.ints(heap_count * 3)
    graph._expiry = [
        (heap[i], heap[i + 1], from_key(heap[i + 2]))
        for i in range(0, heap_count * 3, 3)
    ]
    hold_count = cur.u64()
    holds = cur.ints(hold_count * 2)
    graph._expiry_hold = {
        from_key(holds[i]): holds[i + 1] for i in range(0, hold_count * 2, 2)
    }

    # --- estimate store -------------------------------------------------
    est_count = cur.u64()
    ints = cur.ints(est_count * _ESTIMATE_INTS)
    estimates = spire.estimates
    base = 0
    for _ in range(est_count):
        container = ints[base + 2]
        estimates[from_key(ints[base])] = CurrentEstimate(
            location=ints[base + 1],
            container=from_key(container) if container else None,
            observed=bool(ints[base + 3]),
            updated_at=ints[base + 4],
        )
        base += _ESTIMATE_INTS

    # --- compressor states ----------------------------------------------
    state_count = cur.u64()
    ints = cur.ints(state_count * _STATE_INTS)
    states = inner._states
    base = 0
    for _ in range(state_count):
        loc_place = ints[base + 1]
        cont_key = ints[base + 5]
        states[from_key(ints[base])] = ObjectState(
            location=(loc_place, ints[base + 2]) if loc_place != _NONE else None,
            last_place=_opt_back(ints[base + 3]),
            is_missing=bool(ints[base + 4]),
            containment=(from_key(cont_key), ints[base + 6]) if cont_key else None,
        )
        base += _STATE_INTS

    # --- dedup sticky assignments ---------------------------------------
    dedup_count = cur.u64()
    ints = cur.ints(dedup_count * 2)
    last_reader = spire.dedup._last_reader
    for i in range(0, dedup_count * 2, 2):
        last_reader[from_key(ints[i])] = ints[i + 1]

    return spire

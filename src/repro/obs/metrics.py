"""Dependency-free telemetry primitives: counters, gauges, histograms.

The substrate's observability layer (DESIGN.md §11).  Three design
constraints shape everything here:

* **near-zero overhead when disabled** — :data:`NULL_REGISTRY` hands out
  shared no-op instruments, so instrumented code pays one attribute call
  that does nothing; hot paths additionally guard whole blocks behind a
  single ``registry.enabled`` check;
* **mergeable** — every instrument snapshots to plain data, and
  snapshots from many registries (one per zone worker, shipped over the
  wire each epoch) merge deterministically: counters and histograms sum,
  gauges last-write-wins.  Histograms use *fixed* log₂ buckets keyed by
  integer exponent, so buckets from different processes always align and
  merging is pointwise addition — no rebucketing, ever;
* **deterministic rendering** — :func:`render_prometheus` sorts series
  by name then labels, so two runs that produced the same counter totals
  render byte-identical exposition text (the property the
  serial-vs-parallel equivalence suite pins).

Instruments are plain mutable objects without locks: the substrate is
single-threaded per process (workers own their registries; the asyncio
server mutates only from the event-loop thread).
"""

from __future__ import annotations

import json
import math
from time import perf_counter
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "SpanTimer",
    "counters_only",
    "merge_snapshots",
    "render_prometheus",
    "snapshot_from_json",
    "snapshot_to_json",
]

#: bucket exponent used for observations <= 0 (renders as le="0")
_ZERO_BUCKET = -(1 << 30)


def _bucket_exponent(value: float) -> int:
    """Smallest integer ``e`` with ``value <= 2**e`` (exact, via frexp)."""
    if value <= 0.0:
        return _ZERO_BUCKET
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
    return exponent - 1 if mantissa == 0.5 else exponent


def _le_label(exponent: int) -> str:
    """Render a bucket exponent as a Prometheus ``le`` boundary."""
    if exponent == _ZERO_BUCKET:
        return "0"
    boundary = 2.0**exponent
    if boundary == int(boundary) and abs(exponent) < 63:
        return str(int(boundary))
    return repr(boundary)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def _snapshot_fields(self) -> dict:
        return {"value": self.value}

    def _restore_fields(self, fields: Mapping) -> None:
        self.value = fields["value"]

    def _merge_fields(self, fields: Mapping) -> None:
        self.value += fields["value"]


class Gauge:
    """Point-in-time value (queue depth, graph size)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def _snapshot_fields(self) -> dict:
        return {"value": self.value}

    def _restore_fields(self, fields: Mapping) -> None:
        self.value = fields["value"]

    def _merge_fields(self, fields: Mapping) -> None:
        self.value = fields["value"]  # last write wins


class Histogram:
    """Fixed log₂-bucket histogram; buckets align across processes.

    Bucket ``e`` counts observations in ``(2**(e-1), 2**e]`` (exponent
    :data:`_ZERO_BUCKET` collects ``<= 0``), so merging histograms from
    different registries is pointwise bucket addition.
    """

    __slots__ = ("buckets", "sum", "count")
    kind = "histogram"

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        exponent = _bucket_exponent(value)
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        self.sum += value
        self.count += 1

    def time(self) -> "SpanTimer":
        """Context manager recording a wall-clock span into this histogram."""
        return SpanTimer(self)

    def _snapshot_fields(self) -> dict:
        return {
            "buckets": {str(e): n for e, n in sorted(self.buckets.items())},
            "sum": self.sum,
            "count": self.count,
        }

    def _restore_fields(self, fields: Mapping) -> None:
        self.buckets = {int(e): n for e, n in fields["buckets"].items()}
        self.sum = fields["sum"]
        self.count = fields["count"]

    def _merge_fields(self, fields: Mapping) -> None:
        for e, n in fields["buckets"].items():
            e = int(e)
            self.buckets[e] = self.buckets.get(e, 0) + n
        self.sum += fields["sum"]
        self.count += fields["count"]


class SpanTimer:
    """``with histogram.time():`` — observes the elapsed seconds on exit."""

    __slots__ = ("_histogram", "_start", "seconds")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "SpanTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = perf_counter() - self._start
        self._histogram.observe(self.seconds)


class _NullInstrument:
    """Absorbs every instrument call; shared by :data:`NULL_REGISTRY`."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullSpan":
        return _NULL_SPAN


class _NullSpan:
    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricRegistry:
    """A namespace of instruments, snapshotable to plain data.

    Args:
        const_labels: Labels stamped on every series this registry owns —
            zone workers use ``{"zone": zone_id}`` so their snapshots stay
            distinguishable after the coordinator merges them.
    """

    enabled = True

    def __init__(self, const_labels: Mapping[str, str] | None = None) -> None:
        self.const_labels = dict(const_labels or {})
        #: (name, label key) -> instrument; help text lives in _help
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    # instrument factories (idempotent: same name+labels -> same object)
    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", **labels: str) -> Histogram:
        return self._get(Histogram, name, help, labels)

    def _get(self, cls, name: str, help: str, labels: Mapping[str, str]):
        merged = dict(self.const_labels)
        merged.update(labels)
        key = (name, _label_key(merged))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = cls()
            self._series[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(instrument).kind}"
            )
        if help and name not in self._help:
            self._help[name] = help
        return instrument

    # ------------------------------------------------------------------
    # snapshot / restore / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view of every series (JSON-serializable, mergeable)."""
        series = []
        for (name, label_key), instrument in sorted(self._series.items()):
            entry = {
                "name": name,
                "kind": instrument.kind,
                "labels": dict(label_key),
            }
            entry.update(instrument._snapshot_fields())
            series.append(entry)
        return {"series": series, "help": dict(self._help)}

    def restore(self, snapshot: Mapping) -> None:
        """Set this registry's series to the snapshot's values.

        Series in the snapshot are created if missing; used to seed a
        rebuilt zone's registry from its checkpoint so counters survive
        failover instead of silently zeroing (DESIGN.md §11).
        """
        for entry in snapshot.get("series", ()):
            cls = _KINDS[entry["kind"]]
            key = (entry["name"], _label_key(entry["labels"]))
            instrument = self._series.get(key)
            if instrument is None or not isinstance(instrument, cls):
                instrument = cls()
                self._series[key] = instrument
            instrument._restore_fields(entry)
        for name, text in snapshot.get("help", {}).items():
            self._help.setdefault(name, text)


class _NullRegistry(MetricRegistry):
    """Disabled registry: every factory returns the shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _get(self, cls, name, help, labels):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"series": [], "help": {}}

    def restore(self, snapshot: Mapping) -> None:
        pass


NULL_REGISTRY = _NullRegistry()


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Merge many registry snapshots into one.

    Counters and histograms with the same (name, labels) sum; gauges take
    the last snapshot's value.  Output series are sorted, so a merge of
    the same inputs is always byte-identical once rendered.
    """
    merged: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
    help_text: dict[str, str] = {}
    for snapshot in snapshots:
        for entry in snapshot.get("series", ()):
            cls = _KINDS[entry["kind"]]
            key = (entry["name"], _label_key(entry["labels"]))
            instrument = merged.get(key)
            if instrument is None:
                instrument = cls()
                instrument._restore_fields(entry)
                merged[key] = instrument
            else:
                if not isinstance(instrument, cls):
                    raise TypeError(
                        f"metric {entry['name']!r} merged with conflicting kinds"
                    )
                instrument._merge_fields(entry)
        for name, text in snapshot.get("help", {}).items():
            help_text.setdefault(name, text)
    series = []
    for (name, label_key), instrument in sorted(merged.items()):
        entry = {"name": name, "kind": instrument.kind, "labels": dict(label_key)}
        entry.update(instrument._snapshot_fields())
        series.append(entry)
    return {"series": series, "help": help_text}


def snapshot_to_json(snapshot: Mapping) -> bytes:
    """Compact, key-sorted JSON bytes (the wire/file form of a snapshot)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")).encode("utf-8")


def snapshot_from_json(data: bytes) -> dict:
    return json.loads(data.decode("utf-8"))


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _format_value(value: int | float) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _render_labels(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(snapshot: Mapping) -> str:
    """Render a (merged) snapshot in Prometheus text exposition format.

    Deterministic: series sort by name then labels, histogram buckets by
    exponent.  Ends with a trailing newline, as the format requires.
    """
    by_name: dict[str, list[dict]] = {}
    for entry in snapshot.get("series", ()):
        by_name.setdefault(entry["name"], []).append(entry)
    help_text = snapshot.get("help", {})
    lines: list[str] = []
    for name in sorted(by_name):
        entries = sorted(by_name[name], key=lambda e: _label_key(e["labels"]))
        kind = entries[0]["kind"]
        text = help_text.get(name)
        if text:
            lines.append(f"# HELP {name} {text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in entries:
            labels = entry["labels"]
            if kind == "histogram":
                cumulative = 0
                for exponent_str, count in sorted(
                    entry["buckets"].items(), key=lambda item: int(item[0])
                ):
                    cumulative += count
                    le = _le_label(int(exponent_str))
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, (('le', le),))} {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_render_labels(labels, (('le', '+Inf'),))} "
                    f"{entry['count']}"
                )
                lines.append(f"{name}_sum{_render_labels(labels)} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{_render_labels(labels)} {entry['count']}")
            else:
                lines.append(f"{name}{_render_labels(labels)} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def counters_only(snapshot: Mapping) -> dict:
    """Project a snapshot onto its counters (drops gauges and timing
    histograms — the deterministic subset the equivalence suite compares)."""
    series = [e for e in snapshot.get("series", ()) if e["kind"] == "counter"]
    return {"series": series, "help": dict(snapshot.get("help", {}))}

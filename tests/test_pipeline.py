"""Integration tests for the end-to-end Spire pipeline (Fig. 2)."""

import pytest

from repro.core.capture import ReaderInfo
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.events.messages import EventKind
from repro.events.wellformed import check_well_formed
from repro.model.locations import UNKNOWN_COLOR
from repro.model.objects import PackagingLevel

from tests.conftest import case, epoch_readings, item, make_deployment, pallet

DOCK = ReaderInfo(reader_id=0, color=0)
BELT = ReaderInfo(reader_id=1, color=1, is_special=True, singulation_level=PackagingLevel.CASE)
SHELF = ReaderInfo(reader_id=2, color=2, period=10)
EXIT = ReaderInfo(reader_id=3, color=3, is_exit=True)

DEPLOYMENT = make_deployment(DOCK, BELT, SHELF, EXIT)


class TestDeployment:
    def test_complete_inference_period_is_lcm(self):
        assert DEPLOYMENT.complete_inference_period == 10
        assert make_deployment(DOCK, BELT).complete_inference_period == 1

    def test_color_periods_takes_fastest(self):
        fast = ReaderInfo(reader_id=7, color=2, period=1)
        deployment = make_deployment(SHELF, fast)
        assert deployment.color_periods() == {2: 1}

    def test_from_readers(self, small_sim):
        deployment = Deployment.from_readers(small_sim.layout.readers)
        assert len(deployment.readers) == len(small_sim.layout.readers)


class TestBasicProcessing:
    def test_observed_objects_tracked(self):
        spire = Spire(DEPLOYMENT)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        assert spire.location_of(case(1)) == DOCK.color
        assert spire.location_of(item(1)) == DOCK.color
        assert spire.container_of(item(1)) == case(1)

    def test_unknown_object_queries(self):
        spire = Spire(DEPLOYMENT)
        assert spire.location_of(item(99)) == UNKNOWN_COLOR
        assert spire.container_of(item(99)) is None

    def test_first_epoch_emits_start_events(self):
        spire = Spire(DEPLOYMENT, compression_level=1)
        output = spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        kinds = [m.kind for m in output.messages]
        assert kinds.count(EventKind.START_LOCATION) == 2
        assert kinds.count(EventKind.START_CONTAINMENT) == 1

    def test_steady_state_emits_nothing(self):
        spire = Spire(DEPLOYMENT, compression_level=1)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        for now in range(1, 6):
            output = spire.process_epoch(epoch_readings(now, {0: [case(1), item(1)]}))
            assert output.messages == []

    def test_invalid_compression_level_rejected(self):
        with pytest.raises(ValueError):
            Spire(DEPLOYMENT, compression_level=3)


class TestCarriedForwardEstimates:
    def test_missed_reading_keeps_location(self):
        spire = Spire(DEPLOYMENT)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        # item missed for a couple of epochs while its case is still seen
        for now in range(1, 3):
            spire.process_epoch(epoch_readings(now, {0: [case(1)]}))
        assert spire.location_of(item(1)) == DOCK.color

    def test_move_updates_location(self):
        spire = Spire(DEPLOYMENT)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        spire.process_epoch(epoch_readings(1, {1: [case(1), item(1)]}))
        assert spire.location_of(case(1)) == BELT.color

    def test_long_absence_becomes_missing(self):
        spire = Spire(DEPLOYMENT)
        spire.process_epoch(epoch_readings(0, {0: [item(1)]}))
        messages = []
        for now in range(1, 31):
            readings = epoch_readings(now, {0: [case(9)]})  # keeps epochs flowing
            messages.extend(spire.process_epoch(readings).messages)
        assert spire.location_of(item(1)) == UNKNOWN_COLOR
        assert any(
            m.kind is EventKind.MISSING and m.obj == item(1) for m in messages
        )


class TestPartialCompleteSchedule:
    def test_complete_epochs_on_lcm_grid(self):
        spire = Spire(DEPLOYMENT)
        outputs = [
            spire.process_epoch(epoch_readings(now, {0: [item(1)]}))
            for now in range(21)
        ]
        complete_epochs = [o.epoch for o in outputs if o.complete]
        assert complete_epochs == [0, 10, 20]


class TestExitHandling:
    def test_exit_reading_retires_object(self):
        spire = Spire(DEPLOYMENT)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        output = spire.process_epoch(epoch_readings(1, {3: [case(1), item(1)]}))
        assert set(output.departed) == {case(1), item(1)}
        assert case(1) not in spire.graph
        assert spire.tracked_objects == 0

    def test_exit_closes_intervals(self):
        spire = Spire(DEPLOYMENT, compression_level=1)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        output = spire.process_epoch(epoch_readings(1, {3: [case(1), item(1)]}))
        kinds = [m.kind for m in output.messages]
        assert kinds.count(EventKind.END_LOCATION) >= 2

    def test_stream_well_formed_through_exit(self):
        spire = Spire(DEPLOYMENT, compression_level=1)
        messages = []
        messages += spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]})).messages
        messages += spire.process_epoch(epoch_readings(1, {1: [case(1), item(1)]})).messages
        messages += spire.process_epoch(epoch_readings(2, {3: [case(1), item(1)]})).messages
        check_well_formed(messages)


class TestConfirmationFlow:
    def test_belt_scan_fixes_ambiguous_containment(self):
        spire = Spire(DEPLOYMENT, params=InferenceParams(beta=0.4))
        # two cases and an item co-located at the dock: ambiguous
        spire.process_epoch(epoch_readings(0, {0: [case(1), case(2), item(1)]}))
        # belt scans case 2 together with the item: containment confirmed
        spire.process_epoch(epoch_readings(1, {1: [case(2), item(1)]}))
        assert spire.container_of(item(1)) == case(2)
        # the confirmation sticks through later co-location noise
        spire.process_epoch(epoch_readings(2, {2: [case(1), case(2), item(1)]}))
        assert spire.container_of(item(1)) == case(2)


class TestRunHelper:
    def test_run_processes_whole_stream(self, small_sim):
        deployment = Deployment.from_readers(small_sim.layout.readers)
        spire = Spire(deployment)
        outputs = spire.run(small_sim.stream)
        assert len(outputs) == len(small_sim.stream)
        check_well_formed([m for o in outputs for m in o.messages])

    def test_timings_recorded(self):
        spire = Spire(DEPLOYMENT)
        output = spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        assert output.update_seconds >= 0.0
        assert output.inference_seconds >= 0.0

"""Low-level deduplication of overlapping reader reports.

SPIRE runs on top of a device-level cleaning layer whose only required
functionality is *deduplication* (Section II, final paragraph): when nearby
readers both report a tag in the same epoch, the tag is assigned to the
reader that read it most recently.

Within an epoch, "most recently" is resolved by sub-epoch arrival order
(:attr:`repro.readers.stream.Reading.seq`); across epochs the deduplicator
remembers each tag's last assignment so ties (identical seq, e.g. when a
caller builds readings without seq info) fall back to the sticky previous
assignment, then to the highest reader id for determinism.
"""

from __future__ import annotations

from repro.model.objects import TagId
from repro.readers.stream import EpochReadings


class Deduplicator:
    """Stateful per-tag deduplication across epochs.

    Usage::

        dedup = Deduplicator()
        clean = dedup.process(epoch_readings)   # one call per epoch
    """

    def __init__(self) -> None:
        self._last_reader: dict[TagId, int] = {}

    def process(self, epoch_readings: EpochReadings) -> EpochReadings:
        """Return a copy of ``epoch_readings`` with each tag reported once.

        The winning reader for a multiply-read tag is the one whose report
        arrived last within the epoch (highest ``seq``); the original input
        is not modified.
        """
        # latest (seq, reader) per tag this epoch
        winner: dict[TagId, tuple[int, int]] = {}
        for reading in epoch_readings.readings():
            key = (reading.seq, reading.reader_id)
            prev = winner.get(reading.tag)
            if prev is None or key > prev:
                # break exact seq ties toward the sticky previous assignment
                if (
                    prev is not None
                    and reading.seq == prev[0]
                    and self._last_reader.get(reading.tag) == prev[1]
                ):
                    continue
                winner[reading.tag] = key

        clean = EpochReadings(epoch=epoch_readings.epoch)
        for tag, (_seq, reader_id) in winner.items():
            clean.add(reader_id, [tag])
            self._last_reader[tag] = reader_id
        return clean

    def forget(self, tag: TagId) -> None:
        """Drop sticky state for a departed tag (keeps memory bounded)."""
        self._last_reader.pop(tag, None)

    @property
    def tracked_tags(self) -> int:
        """Number of tags with sticky assignment state."""
        return len(self._last_reader)

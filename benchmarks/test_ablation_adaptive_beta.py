"""Ablation — adaptive beta and stolen *contained* items (§IV-A heuristic).

A stolen item whose case remains visible is the hardest anomaly: the item's
confirmed containment keeps pulling its estimate back to the case (Table I
Rule I), so the theft surfaces only once the confirmation loses credibility.
The paper's adaptive-beta heuristic re-weights belief toward recent history
as conflicting observations accumulate — exactly the signal a stolen item
produces.  This ablation measures detection of *item-level* removals with
static vs. adaptive beta.
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy
from repro.metrics.delay import detection_delays
from repro.model.objects import PackagingLevel

from benchmarks._shared import Table, accuracy_config, get_sim, get_spire

VARIANTS = [
    ("static beta = 0.4", InferenceParams(beta=0.4, theta=1.5)),
    ("static beta = 0.1", InferenceParams(beta=0.1, theta=1.5)),
    ("adaptive beta", InferenceParams(adaptive_beta=True, theta=1.5)),
]
ANOMALY_PERIOD = 100


def run_experiment() -> dict:
    config = accuracy_config(anomaly_period=ANOMALY_PERIOD, shelf_read_period=30)
    sim = get_sim(config)
    vanished_items = {
        tag: epoch
        for tag, epoch in sim.truth.vanished.items()
        if tag.level == PackagingLevel.ITEM
    }
    results = {}
    for name, params in VARIANTS:
        report = get_spire(
            config,
            params=params,
            compression_level=1,
            policies=(ScoringPolicy.ALL,),
            score=True,
        )
        detection = detection_delays(report.messages, vanished_items)
        acc = report.accuracy[ScoringPolicy.ALL]
        results[name] = (
            detection.detection_rate,
            detection.mean_delay,
            acc.containment_error_rate,
        )
    return results, len(vanished_items)


@pytest.mark.benchmark(group="ablation-adaptive-beta")
def test_ablation_adaptive_beta_detection(benchmark):
    results, vanished_count = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        f"Ablation: detection of {vanished_count} stolen items, static vs adaptive beta",
        ["policy", "detection rate", "mean delay (s)", "containment error"],
    )
    for name, _ in VARIANTS:
        table.add(name, *results[name])
    table.show()

    static, _params = VARIANTS[0]
    adaptive = "adaptive beta"
    # adaptive beta never detects fewer stolen items than the default
    # static setting, and keeps containment accuracy in the same ballpark
    assert results[adaptive][0] >= results[static][0] - 1e-9
    assert results[adaptive][2] < results[static][2] + 0.05

"""Ablation — correlated (bursty) read losses vs. i.i.d. losses.

The paper's evaluation (like most RFID work) draws misses i.i.d. per
interrogation, but its own citations attribute loss to *persistent* causes
— occluding metal ([10]) and tag contention ([11]).  This ablation holds
the average read rate fixed at the paper's default (0.85) and sweeps the
mean loss-burst length of a Gilbert–Elliott channel, measuring how much
correlated misses cost SPIRE's history-based inference.

Expected shape: accuracy degrades as bursts lengthen — a burst of misses
defeats both the one-period decay tolerance (location) and the co-location
bit-vector (containment) in a way the same number of scattered misses does
not.
"""

import dataclasses

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

BURSTS = [0.0, 2.0, 4.0, 8.0, 16.0]  # 0 = i.i.d.


def run_experiment() -> dict:
    results = {}
    for burst in BURSTS:
        config = dataclasses.replace(accuracy_config(), burst_mean_length=burst)
        report = get_spire(config, params=InferenceParams(), policies=(ScoringPolicy.ALL,))
        acc = report.accuracy[ScoringPolicy.ALL]
        results[burst] = (acc.location_error_rate, acc.containment_error_rate)
    return results


@pytest.mark.benchmark(group="ablation-burst")
def test_ablation_burst_losses(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Ablation: mean loss-burst length (avg read rate fixed at 0.85) vs. accuracy",
        ["mean burst (interrogations)", "location error", "containment error"],
    )
    for burst in BURSTS:
        label = "i.i.d." if burst == 0 else burst
        table.add(label, *results[burst])
    table.show()

    # long bursts must hurt relative to i.i.d. losses at the same rate
    assert results[16.0][0] > results[0.0][0]
    assert results[16.0][1] > results[0.0][1]
    # and the degradation grows with the burst length (small-noise slack)
    assert results[16.0][0] >= results[4.0][0] - 0.01

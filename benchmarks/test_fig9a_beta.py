"""Fig. 9(a) — containment inference error vs. beta (Expt 1).

Reproduces: containment error rate as beta sweeps 0 -> 1, one curve per
shelf-reader frequency, plus the adaptive-beta heuristic.  Expected shape:
high beta hurts when shelf readings are frequent (noisy co-location
history); low and adaptive beta are robust across frequencies.
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

BETAS = [0.0, 0.2, 0.4, 0.6, 0.85, 1.0]
SHELF_PERIODS = [1, 10, 60]


def containment_error(shelf_period: int, params: InferenceParams) -> float:
    report = get_spire(
        accuracy_config(shelf_read_period=shelf_period),
        params=params,
        policies=(ScoringPolicy.ALL,),
    )
    return report.accuracy[ScoringPolicy.ALL].containment_error_rate


def run_experiment() -> dict:
    curves: dict = {}
    for period in SHELF_PERIODS:
        curves[period] = {
            beta: containment_error(period, InferenceParams(beta=beta))
            for beta in BETAS
        }
        curves[period]["adaptive"] = containment_error(
            period, InferenceParams(adaptive_beta=True)
        )
    return curves


@pytest.mark.benchmark(group="fig9a")
def test_fig9a_containment_error_vs_beta(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 9(a): containment error rate vs. beta",
        ["shelf period (s)"] + [f"beta={b}" for b in BETAS] + ["adaptive"],
    )
    for period in SHELF_PERIODS:
        table.add(period, *(curves[period][b] for b in BETAS), curves[period]["adaptive"])
    table.show()

    # Shape: with the noisiest co-location history (shelf reads every
    # second), leaning fully on recent history must not beat leaning on
    # confirmations.
    noisy = curves[SHELF_PERIODS[0]]
    assert noisy[1.0] >= noisy[0.2] - 0.02
    # The adaptive heuristic tracks the low-beta regime (Expt 1 finding).
    for period in SHELF_PERIODS:
        low = min(curves[period][b] for b in (0.0, 0.2, 0.4))
        assert curves[period]["adaptive"] <= low + 0.05

"""Asyncio TCP front-end over the standing-query engine.

:class:`SpireServer` wraps a :class:`~repro.serving.engine.StandingQueryEngine`
in an asyncio TCP server speaking the length-prefixed protocol of
:mod:`repro.serving.protocol`.  Connections are independent: each gets a
:class:`~repro.distributed.wire.FrameDecoder`, and each subscription is
owned by the connection that opened it (closing the socket tears its
subscriptions down).

The server does not read the stream itself — a **pump** feeds it.
:func:`pump_coordinator` drives a :class:`~repro.distributed.coordinator.
Coordinator` (or :class:`~repro.distributed.parallel.ParallelCoordinator`)
one epoch at a time in the default executor, so serving composes with
sharded execution and zone failover: whatever the substrate emits —
including the splice messages of ``fail_zone``/``recover_zone`` — is what
subscribers see.  After each published epoch, every subscription's queue
is flushed to its connection — on batch-negotiated connections
(``OP_CONFIGURE`` + ``FLAG_BATCH_EVENTS``) as **one coalesced
``FRAME_EVENT_BATCH`` frame per epoch**, with subscriptions that drained
the identical notification sequence sharing one encoded group; the
engine's bounded queues (drop-oldest, escalating to eviction when
``evict_after`` is set) are the backpressure boundary, so a stalled
client costs memory ``O(max_queue)`` and never blocks the pump.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Iterable

from repro.distributed.wire import FrameDecoder, WireError, encode_frame, encode_frames
from repro.events.messages import EventMessage
from repro.faults.warnings import Quarantine
from repro.obs.metrics import merge_snapshots, render_prometheus
from repro.readers.stream import EpochReadings
from repro.serving import protocol
from repro.serving.engine import StandingQueryEngine
from repro.sase import compile_pattern
from repro.serving.patterns import pattern_from_spec


class SpireServer:
    """Serve one-shot queries and standing subscriptions over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        expand_level2: bool = True,
        quarantine: Quarantine | None = None,
        engine: StandingQueryEngine | None = None,
        metrics_provider: Callable[[], dict] | None = None,
        evict_after: int = 0,
        reuse_port: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.engine = engine if engine is not None else StandingQueryEngine(
            expand_level2=expand_level2, quarantine=quarantine, evict_after=evict_after
        )
        #: optional callback returning a substrate obs snapshot (e.g. a
        #: coordinator's ``metrics_snapshot``) merged into ``METRICS`` replies
        self.metrics_provider = metrics_provider
        #: bind with SO_REUSEPORT so several acceptor processes can share
        #: the port (see repro.serving.frontend)
        self.reuse_port = reuse_port
        self._server: asyncio.AbstractServer | None = None
        #: sub_id -> writer owning that subscription
        self._sub_owner: dict[int, asyncio.StreamWriter] = {}
        self._writers: set[asyncio.StreamWriter] = set()
        #: writers that negotiated FLAG_BATCH_EVENTS (protocol v2 push)
        self._batched: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, reuse_port=self.reuse_port or None
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def __aenter__(self) -> "SpireServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # publishing (called by pumps)
    # ------------------------------------------------------------------

    async def publish_epoch(self, epoch: int, messages: list[EventMessage]) -> int:
        """Feed one epoch's merged output; flush matches to subscribers."""
        async with self._lock:
            queued = self.engine.publish(epoch, messages)
            await self._notify_evictions()
            await self._flush_subscriptions()
        return queued

    async def _notify_evictions(self) -> None:
        """Deliver eviction notices to owners the engine just evicted."""
        for sub_id, note in self.engine.evicted:
            writer = self._sub_owner.pop(sub_id, None)
            if writer is None or writer.is_closing():
                continue
            writer.write(encode_frame(protocol.encode_event(sub_id, note)))
            try:
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass

    async def _flush_subscriptions(self) -> None:
        dead: list[int] = []
        #: per-writer drained output, preserving subscription order
        by_writer: dict[asyncio.StreamWriter, list[tuple[int, list]]] = {}
        for sub_id, writer in list(self._sub_owner.items()):
            notes = self.engine.drain(sub_id)
            if not notes:
                continue
            if writer.is_closing():
                dead.append(sub_id)
                continue
            by_writer.setdefault(writer, []).append((sub_id, notes))
        epoch = self.engine.last_epoch or 0
        for writer, entries in by_writer.items():
            if writer in self._batched:
                # protocol v2: one coalesced frame per epoch per connection;
                # subscriptions that drained the *identical* notification
                # sequence (the common case under shared fan-out) share one
                # encoded group, so N duplicate subscribers cost one body
                groups: dict[tuple, list[int]] = {}
                sequences: dict[tuple, list] = {}
                for sub_id, notes in entries:
                    key = tuple(map(id, notes))
                    if key in groups:
                        groups[key].append(sub_id)
                    else:
                        groups[key] = [sub_id]
                        sequences[key] = notes
                payload = protocol.encode_event_batch(
                    epoch, [(groups[key], sequences[key]) for key in groups]
                )
                data = encode_frame(payload)
            else:
                data = encode_frames(
                    protocol.encode_event(sub_id, note)
                    for sub_id, notes in entries
                    for note in notes
                )
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, RuntimeError):
                dead.extend(sub_id for sub_id, _ in entries)
        for sub_id in dead:
            self._drop_subscription(sub_id)

    def _drop_subscription(self, sub_id: int) -> None:
        self._sub_owner.pop(sub_id, None)
        self.engine.unsubscribe(sub_id)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except WireError:
                    break
                for payload in frames:
                    reply = await self._dispatch(payload, writer)
                    if reply is not None:
                        writer.write(encode_frame(reply))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown tears connections down
        finally:
            async with self._lock:
                owned = [s for s, w in self._sub_owner.items() if w is writer]
                for sub_id in owned:
                    self._drop_subscription(sub_id)
            self._writers.discard(writer)
            self._batched.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _dispatch(
        self, payload: bytes, writer: asyncio.StreamWriter
    ) -> bytes | None:
        try:
            op, request_id = protocol.decode_request_header(payload)
        except WireError:
            return None
        try:
            if op == protocol.OP_QUERY:
                return self._handle_query(request_id, payload)
            if op == protocol.OP_SUBSCRIBE:
                return await self._handle_subscribe(request_id, payload, writer)
            if op == protocol.OP_SUBSCRIBE_PATTERN:
                return await self._handle_subscribe_pattern(request_id, payload, writer)
            if op == protocol.OP_UNSUBSCRIBE:
                return await self._handle_unsubscribe(request_id, payload)
            if op == protocol.OP_CONFIGURE:
                return self._handle_configure(request_id, payload, writer)
            if op == protocol.OP_STATS:
                return protocol.encode_reply(
                    request_id, protocol.encode_stats_body(self.stats_dict())
                )
            if op == protocol.OP_METRICS:
                return protocol.encode_reply(
                    request_id, protocol.encode_metrics_body(self.render_metrics())
                )
            return protocol.encode_error_reply(request_id, f"unknown op {op}")
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return protocol.encode_error_reply(request_id, str(exc))

    def _handle_query(self, request_id: int, payload: bytes) -> bytes:
        kind, obj, place, t1, t2 = protocol.decode_query(payload)
        index = self.engine.index
        run = self.engine.timed_query
        if kind == protocol.Q_LOCATION:
            body = protocol.encode_scalar(run(index.location_of, obj, t1))
        elif kind == protocol.Q_CONTAINER:
            body = protocol.encode_tag_value(run(index.container_of, obj, t1))
        elif kind == protocol.Q_CONTENTS:
            body = protocol.encode_tag_list(run(index.contents_of, obj, t1))
        elif kind == protocol.Q_OBJECTS_AT:
            body = protocol.encode_tag_list(run(index.objects_at, place, t1))
        elif kind == protocol.Q_VISITORS:
            body = protocol.encode_tag_list(run(index.visitors, place, t1, t2))
        elif kind == protocol.Q_PATH:
            body = protocol.encode_path(run(index.path, obj))
        elif kind == protocol.Q_TOP_LEVEL:
            body = protocol.encode_tag_value(run(index.top_level_container, obj, t1))
        elif kind == protocol.Q_DWELL:
            body = protocol.encode_scalar(run(index.dwell_time, obj, place, t1))
        elif kind == protocol.Q_IS_MISSING:
            body = protocol.encode_scalar(int(run(index.is_missing, obj, t1)))
        else:
            return protocol.encode_error_reply(request_id, f"unknown query kind {kind}")
        return protocol.encode_reply(request_id, body)

    async def _handle_subscribe(
        self, request_id: int, payload: bytes, writer: asyncio.StreamWriter
    ) -> bytes:
        spec, max_queue = protocol.decode_subscribe(payload)
        pattern = pattern_from_spec(spec)
        async with self._lock:
            sub = self.engine.subscribe(pattern, max_queue=max_queue)
            self._sub_owner[sub.sub_id] = writer
        return protocol.encode_reply(request_id, protocol.encode_subscribed(sub.sub_id))

    async def _handle_subscribe_pattern(
        self, request_id: int, payload: bytes, writer: asyncio.StreamWriter
    ) -> bytes:
        source, max_queue = protocol.decode_subscribe_pattern(payload)
        # compile outside the lock; PatternError (a ValueError) propagates
        # to _dispatch's boundary handler and becomes the compile-error
        # reply the client surfaces verbatim
        pattern = compile_pattern(source)
        async with self._lock:
            sub = self.engine.subscribe(pattern, max_queue=max_queue)
            self._sub_owner[sub.sub_id] = writer
        return protocol.encode_reply(request_id, protocol.encode_subscribed(sub.sub_id))

    def _handle_configure(
        self, request_id: int, payload: bytes, writer: asyncio.StreamWriter
    ) -> bytes:
        requested = protocol.decode_configure(payload)
        accepted = requested & protocol.FLAG_BATCH_EVENTS
        if accepted & protocol.FLAG_BATCH_EVENTS:
            self._batched.add(writer)
        else:
            self._batched.discard(writer)
        return protocol.encode_reply(request_id, protocol.encode_configured(accepted))

    async def _handle_unsubscribe(self, request_id: int, payload: bytes) -> bytes:
        sub_id = protocol.decode_unsubscribe(payload)
        async with self._lock:
            existed = sub_id in self._sub_owner
            self._drop_subscription(sub_id)
        return protocol.encode_reply(request_id, protocol.encode_subscribed(sub_id if existed else 0))

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def stats_dict(self) -> dict:
        stats = self.engine.stats
        return {
            "epochs_published": stats.epochs_published,
            "messages_published": stats.messages_published,
            "active_subscriptions": stats.active_subscriptions,
            "subscriptions_opened": stats.subscriptions_opened,
            "notifications_delivered": stats.notifications_delivered,
            "notifications_dropped": stats.notifications_dropped,
            "subscriptions_evicted": stats.subscriptions_evicted,
            "pattern_evaluations": stats.pattern_evaluations,
            "shared_runtimes": len(self.engine.runtimes),
            "queries_served": stats.queries_served,
            "query_seconds": stats.query_seconds,
            "latency_buckets": {str(k): v for k, v in sorted(stats.latency_buckets.items())},
            "last_epoch": self.engine.last_epoch,
        }

    # ------------------------------------------------------------------
    # subscription persistence
    # ------------------------------------------------------------------

    def save_subscriptions(self, path) -> int:
        """Write the subscription registry next to the server's state.

        Atomic (tmp + rename), mirroring the checkpoint conventions; the
        payload is the engine's canonical-pattern-text snapshot.  Returns
        the number of subscriptions persisted.
        """
        import os

        data = self.engine.dump_subscriptions()
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
        return len(self.engine.subscriptions)

    def load_subscriptions(self, path) -> int:
        """Re-arm persisted subscriptions (restored subs are durable —
        exempt from eviction until their consumers reconnect).  Returns
        the number restored; a missing file restores nothing."""
        import os

        if not os.path.exists(path):
            return 0
        with open(path, "rb") as fh:
            data = fh.read()
        return self.engine.restore_subscriptions(data)

    def metrics_snapshot(self) -> dict:
        """Serving-layer snapshot merged with the substrate's (if wired)."""
        snapshots = [self.engine.metrics_snapshot()]
        if self.metrics_provider is not None:
            snapshots.append(self.metrics_provider())
        return merge_snapshots(snapshots)

    def render_metrics(self) -> str:
        """The ``METRICS`` reply body: Prometheus text exposition."""
        return render_prometheus(self.metrics_snapshot())


async def pump_coordinator(
    server: SpireServer,
    coordinator,
    epochs: Iterable[EpochReadings],
    actions: dict[int, Callable[[], list[EventMessage]]] | None = None,
    epoch_interval: float = 0.0,
    on_epoch: Callable[[int, int], Awaitable[None] | None] | None = None,
) -> int:
    """Drive a coordinator over ``epochs``, publishing each result.

    Each ``process_epoch`` call runs in the default executor so the event
    loop keeps serving queries while a (CPU-bound, possibly multi-process)
    epoch step is in flight.  ``actions`` maps an epoch *index* to a
    closure run just before that epoch — e.g. ``fail_zone``/``recover_zone``
    — whose returned splice messages are published with the epoch's own.
    ``epoch_interval`` throttles replay to approximate a live stream.
    Returns the number of epochs pumped.
    """
    if server.metrics_provider is None and hasattr(coordinator, "metrics_snapshot"):
        server.metrics_provider = coordinator.metrics_snapshot
    loop = asyncio.get_running_loop()
    pumped = 0
    for i, readings in enumerate(epochs):
        spliced: list[EventMessage] = []
        if actions and i in actions:
            spliced = list(actions[i]() or [])
        result = await loop.run_in_executor(None, coordinator.process_epoch, readings)
        await server.publish_epoch(result.epoch, spliced + list(result.messages))
        pumped += 1
        if on_epoch is not None:
            maybe = on_epoch(result.epoch, pumped)
            if maybe is not None:
                await maybe
        if epoch_interval > 0:
            await asyncio.sleep(epoch_interval)
    return pumped

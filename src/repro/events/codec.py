"""Binary codec for event messages.

The compression-ratio accounting charges a fixed
:data:`~repro.events.messages.EVENT_MESSAGE_BYTES` per message; this module
provides the actual wire format backing that number, so streams can be
persisted or shipped between processes:

``kind(1) | obj level(1) | obj serial(6) | place/container(8) | Vs(4) | Ve(4)``

25 bytes per message, little-endian.  ``Ve = ∞`` is encoded as the
all-ones unsigned 32-bit value; the place/container field holds a signed
location color for location messages (``-1`` = unknown) or a packed
(level, serial) tag for containment messages.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.events.messages import (
    EVENT_MESSAGE_BYTES,
    INFINITY,
    EventKind,
    EventMessage,
)
from repro.model.objects import PackagingLevel, TagId

#: canonical on-wire layout; its size equals EVENT_MESSAGE_BYTES so the
#: sizing metrics reflect the real encoding:
#: B kind | B levels (obj in low nibble, partner in high nibble)
#: I+H obj serial (48 bit) | I+H partner serial/place (48 bit)
#: L Vs | L Ve | 3 reserved bytes
WIRE_FORMAT = struct.Struct("<BBIHIHLL3x")

_KIND_CODES = {kind: i for i, kind in enumerate(EventKind)}
_KIND_FROM_CODE = {i: kind for kind, i in _KIND_CODES.items()}

_VE_INFINITY = 0xFFFFFFFF
_SERIAL_MAX = (1 << 48) - 1


class CodecError(ValueError):
    """Raised when a message cannot be encoded or bytes cannot be decoded."""


def _split48(value: int) -> tuple[int, int]:
    return value & 0xFFFFFFFF, (value >> 32) & 0xFFFF


def _join48(low: int, high: int) -> int:
    return (high << 32) | low


def encode_message(msg: EventMessage) -> bytes:
    """Encode one message to its 25-byte wire form."""
    if msg.obj.serial > _SERIAL_MAX or msg.obj.serial < 0:
        raise CodecError(f"object serial {msg.obj.serial} out of 48-bit range")
    obj_level = msg.obj.level.value
    if msg.kind.is_containment:
        partner_level = msg.container.level.value  # type: ignore[union-attr]
        partner_value = msg.container.serial  # type: ignore[union-attr]
        if partner_value > _SERIAL_MAX:
            raise CodecError(f"container serial {partner_value} out of 48-bit range")
    else:
        partner_level = 0
        place = msg.place if msg.place is not None else -1
        # location colors are small; store as unsigned with +1 bias so the
        # unknown location (-1) encodes as 0
        partner_value = place + 1
        if partner_value < 0 or partner_value > _SERIAL_MAX:
            raise CodecError(f"location color {place} out of encodable range")
    ve = _VE_INFINITY if msg.ve == INFINITY else int(msg.ve)
    if not 0 <= msg.vs < _VE_INFINITY or (ve != _VE_INFINITY and ve >= _VE_INFINITY):
        raise CodecError(f"timestamps out of 32-bit range: [{msg.vs}, {msg.ve}]")
    obj_low, obj_high = _split48(msg.obj.serial)
    partner_low, partner_high = _split48(partner_value)
    return WIRE_FORMAT.pack(
        _KIND_CODES[msg.kind],
        obj_level | (partner_level << 4),
        obj_low,
        obj_high,
        partner_low,
        partner_high,
        msg.vs,
        ve,
    )


def decode_message(data: bytes) -> EventMessage:
    """Decode one 25-byte wire-form message."""
    if len(data) != WIRE_FORMAT.size:
        raise CodecError(f"expected {WIRE_FORMAT.size} bytes, got {len(data)}")
    (
        kind_code,
        levels,
        obj_low,
        obj_high,
        partner_low,
        partner_high,
        vs,
        ve_raw,
    ) = WIRE_FORMAT.unpack(data)
    kind = _KIND_FROM_CODE.get(kind_code)
    if kind is None:
        raise CodecError(f"unknown message kind code {kind_code}")
    try:
        obj = TagId(PackagingLevel(levels & 0x0F), _join48(obj_low, obj_high))
    except ValueError as exc:
        raise CodecError(f"invalid packaging level in {data!r}") from exc
    partner_value = _join48(partner_low, partner_high)
    # finite Ve decodes as int so a decode→str round-trip matches the
    # original message exactly (the parallel coordinator relies on this)
    ve: float = INFINITY if ve_raw == _VE_INFINITY else ve_raw
    if kind.is_containment:
        try:
            container = TagId(PackagingLevel((levels >> 4) & 0x0F), partner_value)
        except ValueError as exc:
            raise CodecError(f"invalid container level in {data!r}") from exc
        return EventMessage(kind, obj, vs, ve, container=container)
    return EventMessage(kind, obj, vs, ve, place=partner_value - 1)


def encode_stream(messages: Iterable[EventMessage]) -> bytes:
    """Encode a whole stream into a contiguous byte string."""
    return b"".join(encode_message(msg) for msg in messages)


def decode_stream(data: bytes) -> Iterator[EventMessage]:
    """Decode a contiguous byte string back into messages."""
    size = WIRE_FORMAT.size
    if len(data) % size:
        raise CodecError(
            f"stream length {len(data)} is not a multiple of the {size}-byte record"
        )
    for offset in range(0, len(data), size):
        yield decode_message(data[offset : offset + size])


class StreamDecoder:
    """Incremental decoder for a byte stream arriving in arbitrary chunks.

    Network transports (the serving front-end, a tailing client) deliver
    event-stream bytes at whatever boundaries the socket produces — chunks
    routinely split a 25-byte record.  ``feed`` buffers the partial tail
    and yields every complete message, in order; ``finish`` asserts the
    stream ended on a record boundary.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting the rest of a record."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[EventMessage]:
        """Absorb ``chunk``; return the messages it completed."""
        self._buffer.extend(chunk)
        size = WIRE_FORMAT.size
        n_complete = len(self._buffer) // size
        if not n_complete:
            return []
        whole = bytes(self._buffer[: n_complete * size])
        del self._buffer[: n_complete * size]
        return [decode_message(whole[off : off + size]) for off in range(0, len(whole), size)]

    def finish(self) -> None:
        """Raise :class:`CodecError` if a partial record is still buffered."""
        if self._buffer:
            raise CodecError(
                f"truncated stream: {len(self._buffer)} byte(s) of a partial record"
            )


def write_stream(messages: Iterable[EventMessage], fp: BinaryIO) -> int:
    """Write messages to a binary file object; returns bytes written."""
    written = 0
    for msg in messages:
        written += fp.write(encode_message(msg))
    return written


def read_stream(fp: BinaryIO) -> Iterator[EventMessage]:
    """Read messages from a binary file object until EOF."""
    size = WIRE_FORMAT.size
    while True:
        chunk = fp.read(size)
        if not chunk:
            return
        if len(chunk) != size:
            raise CodecError("truncated stream: partial record at EOF")
        yield decode_message(chunk)

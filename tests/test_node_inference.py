"""Unit tests for node inference (Eqs. 3–4)."""

import pytest

from repro.core.graph import Graph
from repro.core.node_inference import infer_node
from repro.core.params import InferenceParams
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, item

BLUE, GREEN = 0, 1


@pytest.fixture
def graph() -> Graph:
    return Graph()


def seen_node(graph, tag, color, seen_at):
    """Uncolored node with (recent color, seen at) memory."""
    node = graph.get_or_create(tag, seen_at)
    graph.set_color(node, color, seen_at)
    graph.begin_epoch()
    return node


class TestFadingColor:
    def test_recently_seen_keeps_color(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=9)
        belief = infer_node(node, {}, now=10, params=InferenceParams())
        assert belief.color == BLUE

    def test_long_absence_becomes_unknown(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        belief = infer_node(node, {}, now=100, params=InferenceParams(theta=1.25))
        assert belief.color == UNKNOWN_COLOR

    def test_theta_zero_never_fades(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        belief = infer_node(node, {}, now=10_000, params=InferenceParams(theta=0.0))
        assert belief.color == BLUE

    def test_higher_theta_fades_faster(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        slow = infer_node(node, {}, now=3, params=InferenceParams(theta=0.5))
        fast = infer_node(node, {}, now=3, params=InferenceParams(theta=3.0))
        assert slow.distribution[BLUE] > fast.distribution[BLUE]
        assert slow.distribution[UNKNOWN_COLOR] < fast.distribution[UNKNOWN_COLOR]

    def test_distribution_normalised(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        belief = infer_node(node, {}, now=5, params=InferenceParams())
        assert sum(belief.distribution.values()) == pytest.approx(1.0)


class TestPropagation:
    def _linked(self, graph, edge_prob=1.0):
        parent = graph.get_or_create(case(1), 0)
        child = seen_node(graph, item(1), BLUE, seen_at=0)
        edge = graph.add_edge(parent, child, 0)
        edge.prob = edge_prob
        edge.confidence = max(edge_prob, 0.5)  # above the propagation floor
        return parent, child

    def test_container_color_propagates(self, graph):
        parent, child = self._linked(graph)
        belief = infer_node(
            child, {parent: GREEN}, now=50, params=InferenceParams(gamma=0.6, theta=1.25)
        )
        # faded own color: the container's observed color should win
        assert belief.color == GREEN

    def test_low_gamma_caps_propagation_below_unknown(self, graph):
        # with gamma < 0.5 the Eq. 3/4 masses make "unknown" beat a fully
        # propagated color once the own color has decayed — the paper's
        # conflict resolution (Table I Rule I), not node inference, is what
        # keeps a long-unobserved contained object at its container's
        # location
        parent, child = self._linked(graph)
        belief = infer_node(
            child, {parent: GREEN}, now=50, params=InferenceParams(gamma=0.4, theta=1.25)
        )
        assert belief.color == UNKNOWN_COLOR
        assert belief.distribution[GREEN] == pytest.approx(0.4, abs=0.01)

    def test_gamma_zero_ignores_edges(self, graph):
        parent, child = self._linked(graph)
        belief = infer_node(
            child, {parent: GREEN}, now=2, params=InferenceParams(gamma=0.0)
        )
        assert GREEN not in belief.distribution

    def test_gamma_one_trusts_only_edges(self, graph):
        parent, child = self._linked(graph)
        belief = infer_node(
            child, {parent: GREEN}, now=2, params=InferenceParams(gamma=1.0)
        )
        assert belief.color == GREEN
        assert belief.distribution[GREEN] == pytest.approx(1.0)

    def test_unknown_neighbours_propagate_nothing(self, graph):
        parent, child = self._linked(graph)
        belief = infer_node(
            child, {parent: UNKNOWN_COLOR}, now=50, params=InferenceParams()
        )
        assert belief.color == UNKNOWN_COLOR

    def test_edges_weighted_by_probability(self, graph):
        child = seen_node(graph, item(1), BLUE, seen_at=0)
        strong_parent = graph.get_or_create(case(1), 0)
        weak_parent = graph.get_or_create(case(2), 0)
        strong_edge = graph.add_edge(strong_parent, child, 0)
        strong_edge.prob, strong_edge.confidence = 0.9, 0.9
        weak_edge = graph.add_edge(weak_parent, child, 0)
        weak_edge.prob, weak_edge.confidence = 0.1, 0.4
        belief = infer_node(
            child,
            {strong_parent: GREEN, weak_parent: BLUE},
            now=50,
            params=InferenceParams(gamma=0.8),
        )
        assert belief.color == GREEN

    def test_child_edges_also_propagate(self, graph):
        parent = seen_node(graph, case(1), BLUE, seen_at=0)
        child = graph.get_or_create(item(1), 0)
        edge = graph.add_edge(parent, child, 0)
        edge.prob, edge.confidence = 1.0, 1.0
        belief = infer_node(
            parent, {child: GREEN}, now=50, params=InferenceParams(gamma=0.5)
        )
        assert belief.color == GREEN


class TestPeriodNormalisedDecay:
    def test_slow_reader_location_fades_slower(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        params = InferenceParams(theta=1.25)
        raw = infer_node(node, {}, now=60, params=params)
        scaled = infer_node(node, {}, now=60, params=params, color_periods={BLUE: 60})
        # 60 epochs is one shelf period: no decay yet under scaling
        assert scaled.distribution[BLUE] > raw.distribution[BLUE]
        assert scaled.color == BLUE

    def test_fast_reader_unaffected_by_scaling(self, graph):
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        params = InferenceParams(theta=1.25)
        raw = infer_node(node, {}, now=10, params=params)
        scaled = infer_node(node, {}, now=10, params=params, color_periods={BLUE: 1})
        assert raw.distribution == scaled.distribution


class TestEdgeCases:
    def test_never_propagated_never_seen_is_unknown(self, graph):
        node = graph.get_or_create(item(1), 0)
        node.recent_color = None
        belief = infer_node(node, {}, now=10, params=InferenceParams())
        assert belief.color == UNKNOWN_COLOR
        assert belief.prob == pytest.approx(1.0)

    def test_deterministic_tie_break_prefers_recent_color(self, graph):
        # construct an exact tie between own color and a propagated color
        node = seen_node(graph, item(1), BLUE, seen_at=0)
        parent = graph.get_or_create(case(1), 0)
        edge = graph.add_edge(parent, node, 0)
        edge.prob, edge.confidence = 1.0, 1.0
        params = InferenceParams(gamma=0.5, theta=0.0)  # fade = 1 forever
        belief = infer_node(node, {parent: GREEN}, now=5, params=params)
        assert belief.distribution[BLUE] == pytest.approx(belief.distribution[GREEN])
        assert belief.color == BLUE

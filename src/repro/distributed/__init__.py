"""Distributed operation: zone-partitioned substrates with object handoff.

The paper's future work (§VIII) calls for running the interpretation and
compression substrate "in distributed environments".  This package
implements the natural partitioning for a large site: readers are grouped
into *zones* (a building, a floor, a yard), each zone runs its own
:class:`~repro.core.pipeline.Spire` over its own readers, and a
:class:`~repro.distributed.coordinator.Coordinator` routes readings,
hands objects off between zones as they migrate, and merges the zones'
compressed outputs into one well-formed stream.

With ``checkpoint_interval`` set, the coordinator also provides zone
failover: periodic per-zone checkpoints, ``fail_zone`` / ``recover_zone``
with replay of buffered epochs, and orphan-tag re-adoption, so the merged
stream survives a zone crash well-formed (see ``docs/FAULTS.md``).
"""

from repro.distributed.coordinator import (
    Coordinator,
    EpochResult,
    HandoffRecord,
    Zone,
    partition_by_location,
)
from repro.distributed.parallel import ParallelCoordinator, WorkerStats

__all__ = [
    "Coordinator",
    "EpochResult",
    "Zone",
    "HandoffRecord",
    "ParallelCoordinator",
    "WorkerStats",
    "partition_by_location",
]

"""Distributed operation: zone-partitioned substrates with object handoff.

The paper's future work (§VIII) calls for running the interpretation and
compression substrate "in distributed environments".  This package
implements the natural partitioning for a large site: readers are grouped
into *zones* (a building, a floor, a yard), each zone runs its own
:class:`~repro.core.pipeline.Spire` over its own readers, and a
:class:`~repro.distributed.coordinator.Coordinator` routes readings,
hands objects off between zones as they migrate, and merges the zones'
compressed outputs into one well-formed stream.
"""

from repro.distributed.coordinator import Coordinator, HandoffRecord, Zone

__all__ = ["Coordinator", "Zone", "HandoffRecord"]

"""AST → NFA compilation: predicate push-down and partition inference.

The compiler lowers a :class:`~repro.sase.ast.PatternAST` into an
:class:`NfaProgram` the runtime executes directly:

* **positive steps** — one NFA state per non-negated SEQ element; an
  instance's ``state`` counts how many steps it has consumed;
* **negation guards** — a negated element becomes a *kill edge* attached
  to the state it interrupts: an event matching the guard while an
  instance sits at that state kills the instance.  A guard after the
  last positive element makes the pattern an **absence** pattern: the
  match fires when the WITHIN window elapses without a kill
  (negation-as-absence, the SASE trailing-negation semantics);
* **predicate push-down** — WHERE is split at top-level ANDs and each
  conjunct is evaluated at the earliest point all its bindings exist:
  at consume time of its latest positive binding, at kill-check time
  for a negated binding, or at fire time when it reads ``now`` / the
  live index (index answers can change as later messages retro-close
  intervals, so index predicates are pinned to the match epoch);
* **partition inference** — the SASE partitioned-active-instance-stack
  optimization: when one attribute's cross-binding equivalence tests
  (``b.obj == a.obj``) connect every element, instances are stacked per
  value of that attribute and each event only touches its own stack.
  Single-element patterns partition on ``obj`` (every event carries
  one); unconnected multi-element patterns fall back to one shared
  stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.messages import EventKind
from repro.sase.ast import (
    And,
    Attr,
    Cmp,
    Expr,
    PatternAST,
    needs_fire_time,
    referenced_bindings,
)
from repro.sase.errors import PatternSemanticError

#: attributes eligible as partition keys, in preference order when
#: several qualify (deterministic compilation)
_PARTITION_PREFERENCE = ("obj", "container", "place", "vs")


@dataclass(frozen=True)
class PositiveStep:
    """One consuming NFA state."""

    index: int  # 0-based position among the positive elements
    binding: str
    kinds: frozenset[EventKind]
    kleene: bool
    preds: tuple[Expr, ...]  # evaluated when this step consumes an event


@dataclass(frozen=True)
class NegationGuard:
    """A kill edge: while an instance sits at ``guard_state``, an event
    matching ``kinds`` + ``preds`` kills it."""

    guard_state: int  # kills instances that have consumed this many steps
    binding: str
    kinds: frozenset[EventKind]
    preds: tuple[Expr, ...]


@dataclass(frozen=True)
class NfaProgram:
    """A compiled, runnable pattern."""

    ast: PatternAST
    steps: tuple[PositiveStep, ...]
    guards: tuple[NegationGuard, ...]
    fire_preds: tuple[Expr, ...]
    window: int | None  # epochs; None = unbounded
    once_per_epoch: bool
    partition_attr: str | None  # None = one shared instance stack
    absence: bool  # trailing negation: fire on window expiry

    @property
    def relevant_kinds(self) -> frozenset[EventKind]:
        kinds: frozenset[EventKind] = frozenset()
        for step in self.steps:
            kinds |= step.kinds
        for guard in self.guards:
            kinds |= guard.kinds
        return kinds

    @property
    def replace_on_restart(self) -> bool:
        """Single-positive absence patterns re-arm: a fresh initiating
        event replaces the pending episode in its partition (the
        episodic semantics of threshold alerts like dwell/missing)."""
        return self.absence and len(self.steps) == 1


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        self.parent.setdefault(item, item)
        while self.parent[item] != item:
            self.parent[item] = self.parent[self.parent[item]]
            item = self.parent[item]
        return item

    def union(self, a: str, b: str) -> None:
        self.parent[self.find(a)] = self.find(b)


def _conjuncts(where: Expr | None) -> list[Expr]:
    if where is None:
        return []
    if isinstance(where, And):
        return list(where.parts)
    return [where]


def _equivalence_attr(conjunct: Expr) -> tuple[str, str, str] | None:
    """``(attr, binding_a, binding_b)`` for ``a.x == b.x`` conjuncts."""
    if (
        isinstance(conjunct, Cmp)
        and conjunct.op == "=="
        and isinstance(conjunct.left, Attr)
        and isinstance(conjunct.right, Attr)
        and conjunct.left.name == conjunct.right.name
        and conjunct.left.binding != conjunct.right.binding
    ):
        return conjunct.left.name, conjunct.left.binding, conjunct.right.binding
    return None


def compile_ast(ast: PatternAST) -> NfaProgram:
    """Lower a parsed pattern to an :class:`NfaProgram`.

    Raises :class:`~repro.sase.errors.PatternSemanticError` on patterns
    that parse but cannot run (unknown bindings, misplaced negation,
    trailing negation without a window, ...).
    """
    steps: list[PositiveStep] = []
    guard_slots: list[tuple[int, str, frozenset[EventKind]]] = []
    position: dict[str, int] = {}  # binding -> element order index
    positive_index: dict[str, int] = {}
    negated: set[str] = set()
    for order, element in enumerate(ast.elements):
        if element.binding in position:
            raise PatternSemanticError(
                f"binding {element.binding!r} is declared twice"
            )
        position[element.binding] = order
        if element.negated:
            if element.kleene:
                raise PatternSemanticError(
                    f"negated element {element.binding!r} cannot carry Kleene+"
                )
            if not steps:
                raise PatternSemanticError(
                    f"negated element {element.binding!r} cannot precede every "
                    "positive element (there is nothing for it to interrupt)"
                )
            negated.add(element.binding)
            guard_slots.append((len(steps), element.binding, element.kinds()))
        else:
            positive_index[element.binding] = len(steps)
            steps.append(
                PositiveStep(
                    index=len(steps),
                    binding=element.binding,
                    kinds=element.kinds(),
                    kleene=element.kleene,
                    preds=(),
                )
            )
    if not steps:
        raise PatternSemanticError("a pattern needs at least one positive element")

    total = len(steps)
    absence = any(slot[0] == total for slot in guard_slots)
    window = ast.window_epochs()
    if absence and window is None:
        raise PatternSemanticError(
            "a trailing negated element needs a WITHIN window: the absence "
            "fires when the window elapses without the negated event"
        )
    if absence and steps[-1].kleene:
        raise PatternSemanticError(
            "Kleene+ on the last positive element cannot combine with a "
            "trailing negation (the run would never settle)"
        )

    # --- assign WHERE conjuncts -------------------------------------------
    step_preds: dict[int, list[Expr]] = {step.index: [] for step in steps}
    guard_preds: dict[str, list[Expr]] = {binding: [] for _, binding, _ in guard_slots}
    fire_preds: list[Expr] = []
    equivalences: list[tuple[str, str, str]] = []
    for conjunct in _conjuncts(ast.where):
        refs = referenced_bindings(conjunct)
        unknown = refs - set(position)
        if unknown:
            raise PatternSemanticError(
                f"predicate {conjunct.unparse()!r} references unknown "
                f"binding(s) {sorted(unknown)}; declared: {sorted(position)}"
            )
        equivalence = _equivalence_attr(conjunct)
        if equivalence is not None:
            equivalences.append(equivalence)
        negated_refs = refs & negated
        if needs_fire_time(conjunct):
            if negated_refs:
                raise PatternSemanticError(
                    f"predicate {conjunct.unparse()!r} reads the live index or "
                    "'now' but references a negated binding; negations are "
                    "checked when the negated event arrives, not at fire time"
                )
            fire_preds.append(conjunct)
            continue
        if negated_refs:
            if len(negated_refs) > 1:
                raise PatternSemanticError(
                    f"predicate {conjunct.unparse()!r} links two negated "
                    "bindings; split it into per-binding conjuncts"
                )
            binding = next(iter(negated_refs))
            guard_order = position[binding]
            late = [
                name
                for name in refs - {binding}
                if position[name] > guard_order
            ]
            if late:
                raise PatternSemanticError(
                    f"predicate {conjunct.unparse()!r} links negated binding "
                    f"{binding!r} with later binding(s) {sorted(late)}; those "
                    "are not bound yet when the negation is checked"
                )
            guard_preds[binding].append(conjunct)
            continue
        if not refs:
            fire_preds.append(conjunct)
            continue
        latest = max(positive_index[name] for name in refs)
        step_preds[latest].append(conjunct)

    compiled_steps = tuple(
        PositiveStep(
            index=step.index,
            binding=step.binding,
            kinds=step.kinds,
            kleene=step.kleene,
            preds=tuple(step_preds[step.index]),
        )
        for step in steps
    )
    guards = tuple(
        NegationGuard(
            guard_state=guard_state,
            binding=binding,
            kinds=kinds,
            preds=tuple(guard_preds[binding]),
        )
        for guard_state, binding, kinds in guard_slots
    )

    # --- partition inference ----------------------------------------------
    partition_attr = _infer_partition(
        set(positive_index), negated, equivalences
    )

    return NfaProgram(
        ast=ast,
        steps=compiled_steps,
        guards=guards,
        fire_preds=tuple(fire_preds),
        window=window,
        once_per_epoch=ast.once_per_epoch,
        partition_attr=partition_attr,
        absence=absence,
    )


def _infer_partition(
    positives: set[str], negated: set[str], equivalences: list[tuple[str, str, str]]
) -> str | None:
    """Pick the stack-partitioning attribute, if any.

    An attribute qualifies when its equivalence tests connect every
    element (positive and negated) into one component — then an event
    can only ever extend/kill instances holding its own attribute value,
    so stacks keyed on that value are semantics-preserving.
    """
    everyone = positives | negated
    if len(everyone) == 1:
        return "obj"  # every event kind carries obj; groups runs per object
    qualified: list[str] = []
    attrs = {attr for attr, _, _ in equivalences}
    for attr in attrs:
        union = _UnionFind()
        for name in everyone:
            union.find(name)
        for eq_attr, a, b in equivalences:
            if eq_attr == attr:
                union.union(a, b)
        roots = {union.find(name) for name in everyone}
        if len(roots) == 1:
            qualified.append(attr)
    if not qualified:
        return None
    for preferred in _PARTITION_PREFERENCE:
        if preferred in qualified:
            return preferred
    return sorted(qualified)[0]

"""RFID readers and the raw reading stream.

This package models the observation side of Section II: fixed readers with
imperfect read rates and configurable interrogation frequencies, the raw
``<tag id, reader id, timestamp>`` stream they produce, and the low-level
deduplication module SPIRE assumes beneath it (Section II, last paragraph).
"""

from repro.readers.reader import Reader, ReaderKind
from repro.readers.stream import Reading, EpochReadings, ReadingStream
from repro.readers.dedup import Deduplicator

__all__ = [
    "Reader",
    "ReaderKind",
    "Reading",
    "EpochReadings",
    "ReadingStream",
    "Deduplicator",
]

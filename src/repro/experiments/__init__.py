"""Shared experiment harness used by the benchmarks and examples.

:mod:`repro.experiments.runner` drives a simulated trace through SPIRE (or
SMURF), scoring accuracy online and collecting the output stream, timings
and sizes — everything the Section VI experiments report.
"""

from repro.experiments.runner import (
    SpireRunReport,
    SmurfRunReport,
    ground_truth_stream,
    run_smurf,
    run_spire,
)

__all__ = [
    "SpireRunReport",
    "SmurfRunReport",
    "ground_truth_stream",
    "run_spire",
    "run_smurf",
]

"""Unit tests for substrate checkpoint/restore."""

import io

import pytest

from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.capture import ReaderInfo
from repro.core.pipeline import Spire

from tests.conftest import case, epoch_readings, item, make_deployment

DOCK = ReaderInfo(reader_id=0, color=0)
SHELF = ReaderInfo(reader_id=1, color=1, period=5)
DEPLOYMENT = make_deployment(DOCK, SHELF)


def _warm_spire() -> Spire:
    spire = Spire(DEPLOYMENT)
    for epoch in range(6):
        spire.process_epoch(epoch_readings(epoch, {0: [case(1), item(1), item(2)]}))
    return spire


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        spire = _warm_spire()
        path = tmp_path / "state.ckpt"
        save_checkpoint(spire, path)
        restored = load_checkpoint(path)
        assert restored.graph.node_count == spire.graph.node_count
        assert restored.graph.edge_count == spire.graph.edge_count
        assert restored.estimates.keys() == spire.estimates.keys()

    def test_buffer_roundtrip(self):
        spire = _warm_spire()
        buffer = io.BytesIO()
        save_checkpoint(spire, buffer)
        buffer.seek(0)
        restored = load_checkpoint(buffer)
        assert restored.location_of(item(1)) == spire.location_of(item(1))

    def test_restored_instance_continues_processing(self, tmp_path):
        spire = _warm_spire()
        path = tmp_path / "state.ckpt"
        save_checkpoint(spire, path)
        restored = load_checkpoint(path)

        # both instances process the same subsequent epochs identically
        for epoch in range(6, 12):
            readings = epoch_readings(epoch, {0: [case(1), item(2)]})  # item 1 missed
            original_out = spire.process_epoch(readings)
            readings2 = epoch_readings(epoch, {0: [case(1), item(2)]})
            restored_out = restored.process_epoch(readings2)
            assert [str(m) for m in original_out.messages] == [
                str(m) for m in restored_out.messages
            ]
        assert restored.location_of(item(1)) == spire.location_of(item(1))
        assert restored.container_of(item(1)) == spire.container_of(item(1))


class TestValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(io.BytesIO(b"not a checkpoint at all"))

    def test_corrupt_payload_rejected(self):
        buffer = io.BytesIO(b"SPIREckpt" + b"\x00garbage\xff")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(buffer)

    def test_wrong_version_rejected(self, tmp_path, monkeypatch):
        import repro.core.checkpoint as ckpt

        spire = _warm_spire()
        path = tmp_path / "state.ckpt"
        save_checkpoint(spire, path, codec="pickle")
        monkeypatch.setattr(ckpt, "CHECKPOINT_VERSION", 999)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_wrong_fast_version_rejected(self, tmp_path, monkeypatch):
        import repro.core.fastcheckpoint as fast

        spire = _warm_spire()
        path = tmp_path / "state.ckpt"
        save_checkpoint(spire, path)  # default codec is "fast"
        monkeypatch.setattr(fast, "FAST_FORMAT_VERSION", 999)
        with pytest.raises(CheckpointError, match="format"):
            load_checkpoint(path)

    def test_non_spire_payload_rejected(self, tmp_path):
        import pickle

        from repro.core.checkpoint import CHECKPOINT_VERSION

        path = tmp_path / "state.ckpt"
        with path.open("wb") as fp:
            fp.write(b"SPIREckpt")
            pickle.dump({"version": CHECKPOINT_VERSION, "spire": "nope"}, fp)
        with pytest.raises(CheckpointError, match="Spire instance"):
            load_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        """A checkpoint cut short mid-payload (the failure atomic writes
        prevent) raises CheckpointError rather than a bare pickle error."""
        spire = _warm_spire()
        path = tmp_path / "state.ckpt"
        save_checkpoint(spire, path)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)


class TestAtomicWrite:
    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "state.ckpt"
        save_checkpoint(_warm_spire(), path)
        save_checkpoint(_warm_spire(), path)  # overwrite goes through a temp too
        assert sorted(p.name for p in tmp_path.iterdir()) == ["state.ckpt"]

    def test_failed_write_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        import repro.core.checkpoint as ckpt

        path = tmp_path / "state.ckpt"
        save_checkpoint(_warm_spire(), path)
        before = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        # fail mid-write, after the temp file exists but before the replace
        monkeypatch.setattr(ckpt.os, "fsync", explode)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(_warm_spire(), path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["state.ckpt"]
        assert isinstance(load_checkpoint(path), Spire)

"""Asyncio client for the serving front-end.

:class:`SpireClient` opens one TCP connection, runs a background reader
task that demultiplexes the server's frames — replies resolve the future
registered under their request id, subscription events land on a single
``notifications`` queue as ``(sub_id, Notification)`` pairs — and exposes
typed helpers for every query kind.  Requests may be pipelined; ids are
assigned per-connection.

    async with SpireClient.connect(host, port) as client:
        sub = await client.subscribe(PatternSpec(PATTERN_PLACE, place=3))
        where = await client.location_of(tag, epoch)
        sub_id, note = await client.next_notification()
"""

from __future__ import annotations

import asyncio

from repro.distributed.wire import FrameDecoder, WireError, encode_frame
from repro.model.objects import TagId
from repro.query.index import Interval
from repro.serving import protocol
from repro.serving.patterns import Notification, PatternSpec


class ServingError(RuntimeError):
    """The server answered a request with an error reply."""


class SpireClient:
    """One connection to a :class:`~repro.serving.server.SpireServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_request = 1
        self.notifications: asyncio.Queue[tuple[int, Notification]] = asyncio.Queue()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "SpireClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    async def __aenter__(self) -> "SpireClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    break
                for payload in self._decoder.feed(chunk):
                    self._on_frame(payload)
        except (ConnectionError, WireError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServingError("connection closed"))

    def _on_frame(self, payload: bytes) -> None:
        kind = protocol.frame_type(payload)
        if kind == protocol.FRAME_EVENT:
            self.notifications.put_nowait(protocol.decode_event(payload))
            return
        if kind == protocol.FRAME_REPLY:
            request_id, status, body = protocol.decode_reply(payload)
            future = self._pending.pop(request_id, None)
            if future is None or future.done():
                return
            if status == protocol.STATUS_OK:
                future.set_result(body)
            else:
                future.set_exception(ServingError(body.decode("utf-8", "replace")))

    async def _request(self, encode, *args) -> bytes:
        request_id = self._next_request
        self._next_request += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(encode(request_id, *args)))
        await self._writer.drain()
        return await future

    async def _query(self, kind: int, **kwargs) -> bytes:
        return await self._request(
            lambda rid: protocol.encode_query(rid, kind, **kwargs)
        )

    # ------------------------------------------------------------------
    # one-shot queries
    # ------------------------------------------------------------------

    async def location_of(self, obj: TagId, t: int) -> int | None:
        return protocol.decode_scalar(
            await self._query(protocol.Q_LOCATION, obj=obj, t1=t)
        )

    async def container_of(self, obj: TagId, t: int) -> TagId | None:
        return protocol.decode_tag_value(
            await self._query(protocol.Q_CONTAINER, obj=obj, t1=t)
        )

    async def contents_of(self, container: TagId, t: int) -> list[TagId]:
        return protocol.decode_tag_list(
            await self._query(protocol.Q_CONTENTS, obj=container, t1=t)
        )

    async def objects_at(self, place: int, t: int) -> list[TagId]:
        return protocol.decode_tag_list(
            await self._query(protocol.Q_OBJECTS_AT, place=place, t1=t)
        )

    async def visitors(self, place: int, t1: int, t2: int) -> list[TagId]:
        return protocol.decode_tag_list(
            await self._query(protocol.Q_VISITORS, place=place, t1=t1, t2=t2)
        )

    async def path(self, obj: TagId) -> list[Interval]:
        return protocol.decode_path(await self._query(protocol.Q_PATH, obj=obj))

    async def top_level_container(self, obj: TagId, t: int) -> TagId | None:
        return protocol.decode_tag_value(
            await self._query(protocol.Q_TOP_LEVEL, obj=obj, t1=t)
        )

    async def dwell_time(
        self, obj: TagId, place: int, horizon: int | None = None
    ) -> int | None:
        return protocol.decode_scalar(
            await self._query(protocol.Q_DWELL, obj=obj, place=place, t1=horizon)
        )

    async def is_missing(self, obj: TagId, t: int) -> bool:
        return bool(
            protocol.decode_scalar(
                await self._query(protocol.Q_IS_MISSING, obj=obj, t1=t)
            )
        )

    # ------------------------------------------------------------------
    # subscriptions / diagnostics
    # ------------------------------------------------------------------

    async def subscribe(self, spec: PatternSpec, max_queue: int = 1024) -> int:
        """Register a standing query; returns the subscription id."""
        body = await self._request(
            lambda rid: protocol.encode_subscribe(rid, spec, max_queue)
        )
        return protocol.decode_subscribed(body)

    async def subscribe_pattern(self, source: str, max_queue: int = 1024) -> int:
        """Subscribe with pattern source text (see :mod:`repro.sase`).

        The server compiles the text; a compile failure raises
        :class:`ServingError` carrying the compiler's message (syntax
        errors include the offending source offset).
        """
        body = await self._request(
            lambda rid: protocol.encode_subscribe_pattern(rid, source, max_queue)
        )
        return protocol.decode_subscribed(body)

    async def unsubscribe(self, sub_id: int) -> bool:
        body = await self._request(
            lambda rid: protocol.encode_unsubscribe(rid, sub_id)
        )
        return protocol.decode_subscribed(body) == sub_id

    async def stats(self) -> dict:
        body = await self._request(protocol.encode_stats_request)
        return protocol.decode_stats_body(body)

    async def metrics(self) -> str:
        """Fetch the server's Prometheus text exposition (``METRICS`` op)."""
        body = await self._request(protocol.encode_metrics_request)
        return protocol.decode_metrics_body(body)

    async def next_notification(
        self, timeout: float | None = None
    ) -> tuple[int, Notification]:
        """Await the next subscription match as ``(sub_id, notification)``."""
        if timeout is None:
            return await self.notifications.get()
        return await asyncio.wait_for(self.notifications.get(), timeout)

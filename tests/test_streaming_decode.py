"""Streaming front-end coverage: chunked record decoding and streaming
level-2 decompression.

The serving pump consumes the compressed stream incrementally, so both
stages must tolerate arbitrary chunk boundaries: the 25-byte record codec
(:class:`~repro.events.codec.StreamDecoder`) fed split mid-record, and the
level-2 expander (:class:`~repro.compression.decompress.
StreamingLevel2Decompressor`) fed one message at a time — each must
reproduce its one-shot counterpart exactly.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.decompress import (
    StreamingLevel2Decompressor,
    decompress_stream,
)
from repro.compression.level2 import ContainmentCompressor
from repro.events import codec
from repro.events.codec import CodecError, StreamDecoder
from repro.events.messages import (
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
)

from tests.conftest import case, item, pallet

L1, L2, L3 = 0, 1, 2


def _sample_messages():
    return [
        start_location(item(1), L1, 0),
        start_location(case(1), L1, 0),
        start_containment(item(1), case(1), 0),
        end_location(item(1), L1, 0, 5),
        start_location(item(1), L2, 5),
        end_containment(item(1), case(1), 0, 5),
        missing(item(1), L2, 9),
        start_location(item(1), L3, 12),
    ]


def _level2_stream():
    """A level-2 stream whose expansion differs from its raw form."""
    compressor = ContainmentCompressor()
    stream = []
    stream += compressor.observe(item(1), L1, case(1), now=0)
    stream += compressor.observe(case(1), L1, pallet(1), now=0)
    stream += compressor.observe(pallet(1), L1, None, now=0)
    stream += compressor.observe(item(1), L2, case(1), now=4)
    stream += compressor.observe(case(1), L2, pallet(1), now=4)
    stream += compressor.observe(pallet(1), L2, None, now=4)
    stream += compressor.observe(item(1), L2, None, now=7)   # item leaves the case
    stream += compressor.observe(case(1), L3, pallet(1), now=7)
    stream += compressor.observe(pallet(1), L3, None, now=7)
    return stream


def _encoded():
    buffer = io.BytesIO()
    codec.write_stream(_sample_messages(), buffer)
    return buffer.getvalue()


class TestStreamDecoder:
    def test_whole_stream_in_one_chunk(self):
        decoder = StreamDecoder()
        out = decoder.feed(_encoded())
        decoder.finish()
        assert out == _sample_messages()
        assert decoder.pending == 0

    def test_byte_at_a_time(self):
        decoder = StreamDecoder()
        out = []
        for i in range(len(_encoded())):
            out.extend(decoder.feed(_encoded()[i : i + 1]))
        decoder.finish()
        assert out == _sample_messages()

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 24, 25, 26, 64, 1000])
    def test_fixed_chunk_sizes(self, chunk_size):
        data = _encoded()
        decoder = StreamDecoder()
        out = []
        for start in range(0, len(data), chunk_size):
            out.extend(decoder.feed(data[start : start + chunk_size]))
        decoder.finish()
        assert out == _sample_messages()

    @given(st.lists(st.integers(min_value=1, max_value=40), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_chunk_boundaries(self, sizes):
        data = _encoded()
        decoder = StreamDecoder()
        out, pos = [], 0
        for size in sizes:
            out.extend(decoder.feed(data[pos : pos + size]))
            pos += size
        out.extend(decoder.feed(data[pos:]))
        decoder.finish()
        assert out == _sample_messages()

    def test_pending_reports_buffered_bytes(self):
        decoder = StreamDecoder()
        decoder.feed(_encoded()[:10])   # less than one record
        assert decoder.pending == 10

    def test_finish_rejects_truncated_record(self):
        decoder = StreamDecoder()
        decoder.feed(_encoded()[:-3])
        with pytest.raises(CodecError, match="truncated"):
            decoder.finish()

    def test_empty_feeds_are_harmless(self):
        decoder = StreamDecoder()
        assert decoder.feed(b"") == []
        out = decoder.feed(_encoded())
        assert decoder.feed(b"") == []
        decoder.finish()
        assert out == _sample_messages()


class TestStreamingLevel2:
    def test_message_at_a_time_matches_one_shot(self):
        stream = _level2_stream()
        expected = decompress_stream(stream)
        streaming = StreamingLevel2Decompressor()
        out = []
        for msg in stream:
            out.extend(streaming.feed(msg))
        out.extend(streaming.flush())
        assert out == expected
        assert len(out) > len(stream)   # expansion actually added events

    @pytest.mark.parametrize("split", [1, 2, 3, 5])
    def test_flush_between_steps_is_transparent(self, split):
        """Flushing at (epoch) boundaries mid-stream must not change the
        output — the serving engine flushes after every published epoch."""
        stream = _level2_stream()
        expected = decompress_stream(stream)
        streaming = StreamingLevel2Decompressor()
        out = []
        for i, msg in enumerate(stream):
            out.extend(streaming.feed(msg))
            if i % split == 0:
                out.extend(streaming.flush())
        out.extend(streaming.flush())
        assert out == expected

    def test_chunked_bytes_through_both_stages(self):
        """The full serving ingest path: raw bytes in arbitrary chunks ->
        StreamDecoder -> StreamingLevel2Decompressor == one-shot pipeline."""
        stream = _level2_stream()
        buffer = io.BytesIO()
        codec.write_stream(stream, buffer)
        data = buffer.getvalue()
        expected = decompress_stream(stream)

        decoder = StreamDecoder()
        expander = StreamingLevel2Decompressor()
        out = []
        for start in range(0, len(data), 13):   # 13 !| 25: mid-record splits
            for msg in decoder.feed(data[start : start + 13]):
                out.extend(expander.feed(msg))
        decoder.finish()
        out.extend(expander.flush())
        assert out == expected

    def test_flush_is_idempotent(self):
        streaming = StreamingLevel2Decompressor()
        for msg in _level2_stream():
            streaming.feed(msg)
        first = streaming.flush()
        assert streaming.flush() == []
        assert first

"""The unified public API: one session object over every execution mode.

:class:`SpireSession` is the front door to the substrate.  It wraps the
four execution engines — an in-process :class:`~repro.core.pipeline.Spire`,
a zone-sharded serial :class:`~repro.distributed.coordinator.Coordinator`,
a multi-process :class:`~repro.distributed.parallel.ParallelCoordinator`,
and a TCP-worker :class:`~repro.distributed.remote.RemoteCoordinator`
— behind one constructor driven by a :class:`SpireConfig`, and threads the
cross-cutting concerns (resilient ingestion, checkpointing, telemetry,
trace logging, TCP serving) through whichever engine the config selects:

    >>> from repro import SpireConfig, SpireSession           # doctest: +SKIP
    >>> config = SpireConfig.from_simulation(sim, metrics=True)
    >>> with SpireSession(config) as session:
    ...     results = session.process(sim.stream)
    ...     print(session.render_metrics())

The old entry points (``Spire``, ``Coordinator``, ``ParallelCoordinator``,
``SpireServer`` + ``pump_coordinator``) remain public and unchanged — the
session is a composition layer, not a replacement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Awaitable, Callable, Iterable, Mapping, Sequence

from repro.core.checkpoint import dumps_spire
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.distributed.coordinator import Coordinator, Zone, partition_by_location
from repro.distributed.parallel import ParallelCoordinator
from repro.faults.resilient import ResilientStream
from repro.model.locations import LocationRegistry
from repro.obs.metrics import (
    MetricRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import TraceLog
from repro.readers.reader import Reader
from repro.readers.stream import EpochReadings
from repro.serving.engine import StandingQueryEngine
from repro.serving.patterns import Notification, Pattern, PatternSpec, pattern_from_spec
from repro.serving.server import SpireServer, pump_coordinator

if TYPE_CHECKING:
    from repro.events.messages import EventMessage
    from repro.model.objects import TagId

__all__ = ["SessionSubscription", "SpireConfig", "SpireSession"]


class SessionSubscription:
    """In-process mirror of the client's subscription handle.

    Returned by :meth:`SpireSession.subscribe` — same surface as
    :class:`~repro.serving.client.ClientSubscription` (``.id``,
    ``.pattern``, ``.next()``, ``.cancel()``) minus the network:
    notifications appear as the session processes epochs, so ``next()``
    never blocks (it returns ``None`` when nothing is queued; the
    ``timeout`` parameter exists only for surface symmetry).
    """

    def __init__(self, session: "SpireSession", sub_id: int, pattern) -> None:
        self._session = session
        self.id = sub_id
        #: whatever was passed to subscribe(): spec, Pattern, or source text
        self.pattern = pattern
        self.cancelled = False

    def next(self, timeout: float | None = None) -> "Notification | None":
        """Pop the next queued notification, or ``None`` if empty."""
        del timeout  # in-process: nothing to wait on
        notes = self._session.serving_engine.drain(self.id, limit=1)
        return notes[0] if notes else None

    def drain(self, limit: int | None = None) -> "list[Notification]":
        """Pop up to ``limit`` queued notifications."""
        return self._session.serving_engine.drain(self.id, limit)

    def pending(self) -> int:
        """Notifications currently queued."""
        sub = self._session.serving_engine.subscriptions.get(self.id)
        return len(sub.queue) if sub is not None else 0

    def cancel(self) -> bool:
        """Unsubscribe; returns whether the subscription still existed."""
        if self.cancelled:
            return False
        self.cancelled = True
        return self._session.serving_engine.unsubscribe(self.id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "live"
        return f"SessionSubscription(id={self.id}, {state})"


@dataclass
class SpireConfig:
    """Everything a :class:`SpireSession` needs, in one place.

    Attributes:
        readers: The deployment's readers (non-empty).
        registry: Location registry the readers reference (optional; a
            minimal one is derived from the readers when omitted).
        params: Inference parameters (paper defaults when ``None``).
        compression_level: Output compression level (0, 1 or 2).
        zone_map: ``zone id -> location names`` partition.  ``None`` runs
            a single substrate (or a single ``site`` zone under workers).
        workers: ``None`` stays in-process; an integer spawns that many
            persistent worker processes (:class:`ParallelCoordinator`).
        remote_workers: Run the zones on this many supervised localhost
            TCP worker daemons instead
            (:class:`~repro.distributed.remote.RemoteCoordinator`);
            mutually exclusive with ``workers``.  Remote mode always
            checkpoints (failover rebuilds zones from checkpoints), so a
            ``None`` ``checkpoint_interval`` defaults to 50 here.
        remote_request_timeout / remote_retries / remote_lease_interval:
            The :class:`~repro.distributed.supervisor.RetryPolicy` knobs
            for remote mode (per-attempt deadline, resend budget,
            heartbeat lease).
        strict: Raise on readings from unmapped readers instead of
            quarantining them.
        resilient: Wrap input streams in a :class:`ResilientStream`
            (re-sequencing, dedup, gap synthesis) before processing.
        max_delay: Watermark lag for the resilient wrapper, in epochs.
        checkpoint_interval: Checkpoint zones every N epochs, enabling
            ``fail_zone`` / ``recover_zone``.  ``None`` disables failover.
        checkpoint_codec: ``"fast"`` (flat binary) or ``"pickle"``.
        host / port: Bind address for :meth:`SpireSession.serve`
            (port 0 = ephemeral).
        expand_level2: Serve patterns over level-2-expanded streams.
        evict_after: Serving backpressure tier 2 — evict a subscription
            after this many consecutive overflowing epochs (0 disables;
            drop-oldest alone then applies).
        metrics: Enable the telemetry substrate (:mod:`repro.obs`).
        trace_path: Write per-epoch span records (JSONL) here.  Not
            supported with ``workers`` (spans live in worker processes).
    """

    readers: Sequence[Reader] = ()
    registry: LocationRegistry | None = None
    params: InferenceParams | None = None
    compression_level: int = 2
    zone_map: Mapping[str, Sequence[str]] | None = None
    workers: int | None = None
    remote_workers: int | None = None
    remote_request_timeout: float = 5.0
    remote_retries: int = 4
    remote_lease_interval: float = 2.0
    strict: bool = False
    resilient: bool = False
    max_delay: int = 0
    checkpoint_interval: int | None = None
    checkpoint_codec: str = "fast"
    host: str = "127.0.0.1"
    port: int = 0
    expand_level2: bool = True
    evict_after: int = 0
    metrics: bool = False
    trace_path: str | os.PathLike | None = None

    @classmethod
    def from_simulation(cls, sim, **overrides) -> "SpireConfig":
        """Config over a :class:`~repro.simulator.warehouse.SimulationResult`."""
        config = cls(readers=list(sim.layout.readers), registry=sim.layout.registry)
        return replace(config, **overrides) if overrides else config

    def with_overrides(self, **overrides) -> "SpireConfig":
        return replace(self, **overrides) if overrides else self


class _ZoneTrace:
    """Forwards span records to a shared :class:`TraceLog`, zone-tagged."""

    __slots__ = ("_trace", "_zone_id")

    def __init__(self, trace: TraceLog, zone_id: str) -> None:
        self._trace = trace
        self._zone_id = zone_id

    def epoch(self, epoch: int, spans: Mapping[str, float], **fields) -> None:
        self._trace.epoch(epoch, spans, zone=self._zone_id, **fields)


class SpireSession:
    """One running instance of the substrate, whatever its shape.

    The execution mode follows from the config:

    * ``remote_workers`` set — supervised TCP worker daemons
      (:class:`~repro.distributed.remote.RemoteCoordinator`) over the
      zone map (a single ``site`` zone when no map is given);
    * ``workers`` set — multi-process :class:`ParallelCoordinator`;
    * ``zone_map`` set (no workers) — serial :class:`Coordinator`;
    * none of those — a plain in-process :class:`Spire`.

    Use as a context manager (or call :meth:`close`) so worker processes
    and trace files are released deterministically.
    """

    def __init__(self, config: SpireConfig) -> None:
        readers = list(config.readers)
        if not readers:
            raise ValueError("SpireConfig.readers must be non-empty")
        if config.workers is not None and config.remote_workers is not None:
            raise ValueError("workers and remote_workers are mutually exclusive")
        if config.trace_path is not None and (
            config.workers is not None or config.remote_workers is not None
        ):
            raise ValueError(
                "trace_path is not supported with workers: span timings "
                "live in worker processes (use metrics instead)"
            )
        self.config = config
        self.registry = config.registry
        self.metrics: MetricRegistry | None = (
            MetricRegistry() if config.metrics else None
        )
        self.trace: TraceLog | None = (
            TraceLog(config.trace_path) if config.trace_path is not None else None
        )
        self._serving: StandingQueryEngine | None = None
        self._closed = False

        sharded = (
            config.workers is not None
            or config.remote_workers is not None
            or config.zone_map is not None
        )
        if sharded:
            if config.zone_map is not None:
                zones = partition_by_location(
                    readers,
                    config.zone_map,
                    config.registry,
                    params=config.params,
                    compression_level=config.compression_level,
                )
            else:
                zones = [
                    Zone.build(
                        "site",
                        readers,
                        config.registry,
                        params=config.params,
                        compression_level=config.compression_level,
                    )
                ]
            if config.remote_workers is not None:
                from repro.distributed import RemoteCoordinator, RetryPolicy

                self.coordinator: Coordinator | None = RemoteCoordinator(
                    zones,
                    workers=config.remote_workers,
                    policy=RetryPolicy(
                        request_timeout=config.remote_request_timeout,
                        max_retries=config.remote_retries,
                        lease_interval=config.remote_lease_interval,
                    ),
                    strict=config.strict,
                    checkpoint_interval=(
                        50
                        if config.checkpoint_interval is None
                        else config.checkpoint_interval
                    ),
                    checkpoint_codec=config.checkpoint_codec,
                    metrics=self.metrics,
                )
            elif config.workers is not None:
                self.coordinator = ParallelCoordinator(
                    zones,
                    strict=config.strict,
                    checkpoint_interval=config.checkpoint_interval,
                    checkpoint_codec=config.checkpoint_codec,
                    workers=config.workers,
                    metrics=self.metrics,
                )
            else:
                self.coordinator = Coordinator(
                    zones,
                    strict=config.strict,
                    checkpoint_interval=config.checkpoint_interval,
                    checkpoint_codec=config.checkpoint_codec,
                    metrics=self.metrics,
                )
                if self.trace is not None:
                    for zone_id, zone in self.coordinator.zones.items():
                        zone.spire.attach_trace(_ZoneTrace(self.trace, zone_id))
            self.spire: Spire | None = None
        else:
            deployment = Deployment.from_readers(readers, config.registry)
            self.spire = Spire(
                deployment,
                config.params,
                compression_level=config.compression_level,
                metrics=self.metrics,
                trace=self.trace,
            )
            self.coordinator = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"local"``, ``"serial"``, ``"parallel"`` or ``"remote"``."""
        if self.spire is not None:
            return "local"
        from repro.distributed import RemoteCoordinator

        if isinstance(self.coordinator, RemoteCoordinator):
            return "remote"
        return "parallel" if isinstance(self.coordinator, ParallelCoordinator) else "serial"

    @property
    def engine(self):
        """The underlying engine (a ``Spire`` or a coordinator)."""
        return self.spire if self.spire is not None else self.coordinator

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if isinstance(self.coordinator, ParallelCoordinator):
            self.coordinator.close()
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "SpireSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------

    def ingest(self, stream: Iterable[EpochReadings]) -> Iterable[EpochReadings]:
        """Apply the config's ingestion policy to a raw stream."""
        if not self.config.resilient:
            return stream
        return ResilientStream(
            stream,
            max_delay=self.config.max_delay,
            known_readers=[r.reader_id for r in self.config.readers],
            metrics=self.metrics,
        )

    def process_epoch(self, readings: EpochReadings):
        """Process one epoch; returns the engine's per-epoch result.

        When the session has a serving engine (a subscription was opened
        or :meth:`serve` was called), the epoch's messages are also
        published to it, so in-process subscriptions and the live query
        index stay current without a TCP pump.
        """
        result = self.engine.process_epoch(readings)
        if self._serving is not None:
            self._serving.publish(result.epoch, list(result.messages))
        return result

    def process(self, stream: Iterable[EpochReadings]) -> list:
        """Run a whole stream; returns the list of per-epoch results.

        Every result has ``.epoch`` and ``.messages`` regardless of mode
        (:class:`~repro.core.pipeline.EpochOutput` locally,
        :class:`~repro.distributed.coordinator.EpochResult` sharded).
        """
        return [self.process_epoch(readings) for readings in self.ingest(stream)]

    # ------------------------------------------------------------------
    # queries (site-wide in sharded modes)
    # ------------------------------------------------------------------

    def location_of(self, tag: "TagId") -> int:
        return self.engine.location_of(tag)

    def container_of(self, tag: "TagId") -> "TagId | None":
        return self.engine.container_of(tag)

    def owner_of(self, tag: "TagId") -> str | None:
        """Owning zone id (``None`` when untracked; ``"site"``-like in local mode)."""
        if self.coordinator is not None:
            return self.coordinator.owner_of(tag)
        assert self.spire is not None
        return "local" if tag in self.spire.estimates else None

    # ------------------------------------------------------------------
    # fault operations / checkpointing
    # ------------------------------------------------------------------

    def fail_zone(self, zone_id: str, at: int | None = None) -> "list[EventMessage]":
        if self.coordinator is None:
            raise ValueError("fail_zone requires a sharded session (zone_map or workers)")
        return self.coordinator.fail_zone(zone_id, at=at)

    def recover_zone(self, zone_id: str, at: int | None = None) -> "list[EventMessage]":
        if self.coordinator is None:
            raise ValueError("recover_zone requires a sharded session (zone_map or workers)")
        return self.coordinator.recover_zone(zone_id, at=at)

    def checkpoint(self) -> dict[str, bytes]:
        """Portable state snapshots by zone (``{"local": ...}`` in local mode).

        Local and serial modes serialize live substrate state on the spot;
        a parallel session's state lives in its workers, so it returns the
        coordinator's most recent captured checkpoints (requires
        ``checkpoint_interval``).
        """
        codec = self.config.checkpoint_codec
        if self.spire is not None:
            return {"local": dumps_spire(self.spire, codec=codec)}
        assert self.coordinator is not None
        if isinstance(self.coordinator, ParallelCoordinator):
            stored = self.coordinator.latest_checkpoints()
            if not stored:
                raise ValueError(
                    "a parallel session checkpoints in its workers; construct "
                    "with checkpoint_interval=N to capture them"
                )
            return stored
        return {
            zone_id: dumps_spire(zone.spire, codec=codec)
            for zone_id, zone in self.coordinator.zones.items()
            if zone.spire is not None
        }

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    @property
    def serving_engine(self) -> StandingQueryEngine:
        """The session's standing-query engine (created on first use).

        Shared between in-process subscriptions (:meth:`subscribe`) and
        the TCP front-end (:meth:`serve`), so both see the same live
        index and fan-out tree.
        """
        if self._serving is None:
            self._serving = StandingQueryEngine(
                expand_level2=self.config.expand_level2,
                evict_after=self.config.evict_after,
            )
        return self._serving

    def subscribe(self, pattern, max_queue: int = 1024) -> SessionSubscription:
        """Register an in-process standing query; returns its handle.

        The same surface as :meth:`SpireClient.subscribe
        <repro.serving.client.SpireClient.subscribe>`: ``pattern`` may be
        SASE pattern source text, a legacy
        :class:`~repro.serving.patterns.PatternSpec`, or a
        :class:`~repro.serving.patterns.Pattern` instance.  Notifications
        accumulate as the session processes epochs; consume them with the
        handle's ``next()``/``drain()``.
        """
        if isinstance(pattern, str):
            from repro.sase import compile_pattern

            instance: Pattern = compile_pattern(pattern)
        elif isinstance(pattern, PatternSpec):
            instance = pattern_from_spec(pattern)
        elif isinstance(pattern, Pattern):
            instance = pattern
        else:
            raise TypeError(
                f"subscribe() wants pattern source text, a PatternSpec, or a "
                f"Pattern; got {type(pattern).__name__}"
            )
        sub = self.serving_engine.subscribe(instance, max_queue=max_queue)
        return SessionSubscription(self, sub.sub_id, pattern)

    def serve(self) -> SpireServer:
        """A TCP front-end over this session (not yet started).

        Use ``async with session.serve() as server:`` then
        :meth:`pump` to drive a stream through it while clients query.
        The server shares the session's :attr:`serving_engine`, so
        in-process and TCP subscriptions fan out from the same tree.
        """
        return SpireServer(
            host=self.config.host,
            port=self.config.port,
            engine=self.serving_engine,
            metrics_provider=self.metrics_snapshot if self.metrics is not None else None,
        )

    async def pump(
        self,
        server: SpireServer,
        stream: Iterable[EpochReadings],
        actions: "dict[int, Callable[[], list[EventMessage]]] | None" = None,
        epoch_interval: float = 0.0,
        on_epoch: "Callable[[int, int], Awaitable[None] | None] | None" = None,
    ) -> int:
        """Drive a stream through this session into a running server."""
        return await pump_coordinator(
            server,
            self.engine,
            self.ingest(stream),
            actions=actions,
            epoch_interval=epoch_interval,
            on_epoch=on_epoch,
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Merged obs snapshot across the session (empty when disabled)."""
        if self.metrics is None:
            return {"series": [], "help": {}}
        if self.coordinator is not None:
            return self.coordinator.metrics_snapshot()
        return merge_snapshots([self.metrics.snapshot()])

    def render_metrics(self) -> str:
        """The session's telemetry as Prometheus text exposition."""
        return render_prometheus(self.metrics_snapshot())

"""Multi-worker scaling sweep — sharded execution vs. the serial engine.

Runs the Table III workload (docs/SCALING.md) through the serial
coordinator (both checkpoint codecs) and through the sharded
:class:`~repro.distributed.parallel.ParallelCoordinator` at 1/2/4/8
workers, asserting the load-bearing property first: **every configuration
produces a byte-identical merged event stream** (one shared SHA-256).
Timings are reported per configuration, plus the checkpoint-codec
micro-benchmark (fast codec vs. the seed's pickle path).

Speedup expectations are machine-relative: on a multi-core host the
4-worker row should beat serial; on a single-core container (CI) the
parallel rows pay pure IPC overhead and only the codec speedup shows.
The assertions therefore gate determinism and codec gains, and bound the
worst-case parallel slowdown, rather than demanding a speedup the
hardware cannot deliver — the recorded sweep in ``BENCH_table3.json``
carries the ``cpu_count`` needed to interpret the numbers.
"""

import os

from repro.experiments.table3 import run_scaling

from benchmarks._shared import PAPER_SCALE, Table

MILESTONES = (
    [25_000, 55_000, 95_000, 135_000, 175_000] if PAPER_SCALE else [2_000, 4_000]
)
WORKER_COUNTS = (1, 2, 4, 8)


def test_parallel_scaling_sweep():
    payload = run_scaling(milestones=MILESTONES, worker_counts=WORKER_COUNTS)

    rows = [
        ("serial (pickle ckpt)", payload["serial_pickle_checkpoints"]),
        ("serial (fast ckpt)", payload["serial_fast_checkpoints"]),
    ] + [
        (f"{run['workers']} worker(s)", run)
        for run in payload["parallel"].values()
    ]
    table = Table(
        f"Scaling sweep ({os.cpu_count()} CPU(s) visible)",
        ["config", "total (s)", "msg/s", "vs serial", "stream sha256"],
    )
    serial = payload["serial_fast_checkpoints"]
    serial_tp = serial["messages"] / serial["total_s"]
    for label, run in rows:
        throughput = run["messages"] / run["total_s"]
        table.add(
            label,
            run["total_s"],
            int(throughput),
            throughput / serial_tp,
            run["stream_sha256"][:16],
        )
    table.show()
    codecs = payload["checkpoint_codecs"]
    print(
        f"checkpoint codec @ {codecs['nodes']} nodes: "
        f"encode {codecs['encode_speedup']:.2f}x, decode {codecs['decode_speedup']:.2f}x "
        f"vs pickle"
    )

    # determinism is non-negotiable: one digest across every configuration
    assert payload["streams_identical"], "parallel stream diverged from serial"
    digests = {run["stream_sha256"] for _, run in rows}
    assert len(digests) == 1

    # every configuration processed the same workload to the same size
    tracked = {run["tracked_objects"] for _, run in rows}
    assert len(tracked) == 1
    assert all(run["messages"] == serial["messages"] for _, run in rows)

    # the fast checkpoint codec must beat pickle on encode (it is the
    # in-epoch-loop cost) — this is the codec half of the perf win
    assert codecs["encode_speedup"] > 1.0

    # parallel overhead bound: even with zero CPU parallelism available,
    # a worker round-trip per epoch must not halve throughput
    for _, run in rows[2:]:
        throughput = run["messages"] / run["total_s"]
        assert throughput >= 0.5 * serial_tp, (
            f"{run['workers']}-worker throughput {throughput:.0f} msg/s fell "
            f"below half of serial ({serial_tp:.0f} msg/s)"
        )

    # on a genuinely multi-core host, demand real scaling at 4 workers
    if (os.cpu_count() or 1) >= 4:
        four = payload["parallel"]["workers_4"]
        assert four["total_s"] < serial["total_s"] / 1.8

"""Per-epoch structured trace log: JSONL spans for offline analysis.

A :class:`TraceLog` appends one JSON object per line to a file.  The
substrate writes one ``epoch`` record per processed epoch carrying the
stage spans it already measures (graph update, inference) plus whatever
counters the caller attaches — enough to reconstruct a flame-style view
of where epoch time went without a profiler attached.

Records share a common shape::

    {"kind": "epoch", "epoch": 1200, "spans": {"update": 0.0012,
     "inference": 0.0034}, "dirty_nodes": 41, "messages": 7}
    {"kind": "span", "epoch": 1200, "name": "checkpoint", "seconds": 0.8}

Timestamps are relative (``t`` = seconds since the log was opened), so
logs diff cleanly across runs.  The writer is line-buffered and append-
only; a crash loses at most the current line.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import IO

__all__ = ["TraceLog"]


class TraceLog:
    """Append-only JSONL span/epoch trace writer."""

    def __init__(self, destination: str | Path | IO[str]) -> None:
        if hasattr(destination, "write"):
            self._fp: IO[str] = destination  # type: ignore[assignment]
            self._owns = False
        else:
            self._fp = Path(destination).open("a", buffering=1, encoding="utf-8")
            self._owns = True
        self._epoch_start = perf_counter()
        self.records_written = 0

    # ------------------------------------------------------------------

    def epoch(self, epoch: int, spans: dict[str, float], **fields) -> None:
        """Record one processed epoch's stage spans (+ scalar context)."""
        record = {
            "kind": "epoch",
            "t": round(perf_counter() - self._epoch_start, 6),
            "epoch": epoch,
            "spans": {name: round(s, 9) for name, s in spans.items()},
        }
        record.update(fields)
        self._write(record)

    def span(self, name: str, epoch: int | None, seconds: float, **fields) -> None:
        """Record one ad-hoc span (checkpoint, failover, replay...)."""
        record = {
            "kind": "span",
            "t": round(perf_counter() - self._epoch_start, 6),
            "name": name,
            "seconds": round(seconds, 9),
        }
        if epoch is not None:
            record["epoch"] = epoch
        record.update(fields)
        self._write(record)

    def _write(self, record: dict) -> None:
        self._fp.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._owns:
            self._fp.close()

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Table III sweep: per-epoch update/inference cost vs. graph size (Expt 5).

This module is the programmatic core behind both the ``repro-spire bench``
CLI subcommand and ``benchmarks/test_table3_speed.py``: it grows a
warehouse with the paper's high-injection workload (a pallet every
``2 * cases_per_pallet`` epochs, nothing leaving the shelves) and records
windowed per-epoch costs each time the graph crosses a milestone node
count.

Two cost views are recorded per milestone:

* ``avg_epoch_s`` — mean cost over *all* epochs of the window (partial
  inference most epochs, complete inference on the LCM grid): the paper's
  "can it keep up" number;
* ``complete_epoch_s`` — mean cost of the complete-inference epochs alone,
  the worst case that must still fit inside an epoch.

The resulting payload (:func:`run_table3` / :func:`write_payload`) is what
``BENCH_table3.json`` holds: workload, machine identification, peak RSS,
the milestone rows, and — when a reference run is requested — before/after
rows plus speedups.  :func:`check_regression` compares a fresh payload
against a committed baseline with a relative tolerance, normalising away
machine-speed differences via the recorded :func:`calibrate` score so a CI
runner is compared fairly against the machine that produced the baseline.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import SimulationResult, WarehouseSimulator

#: default milestone node counts (the paper sweeps ~25k-175k; these keep a
#: full before/after sweep under a minute of wall clock)
DEFAULT_MILESTONES = (2_000, 4_000, 8_000, 12_000)
DEFAULT_CASES_PER_PALLET = 5
DEFAULT_SEED = 41

#: a milestone window only closes after this many complete-inference epochs,
#: so every ``complete_epoch_s`` averages at least two full scans
MIN_COMPLETES_PER_WINDOW = 2


def growth_per_epoch(cases_per_pallet: int) -> float:
    """Objects injected per epoch: a pallet (1 + cases*(items+1) objects)
    arrives every ``2 * cases_per_pallet`` epochs."""
    return (1 + cases_per_pallet * 21) / (2 * cases_per_pallet)


def table3_config(
    cases_per_pallet: int, duration: int, seed: int = DEFAULT_SEED
) -> SimulationConfig:
    """High-injection workload for Table III / Fig. 10 graph growth.

    The injection rate is chosen so the receiving belt (one case at a time,
    one epoch each) keeps up — cases_per_pallet/pallet_period must stay
    below 1 case/epoch or the dock queue (and the dock reader's quadratic
    edge-creation cost) grows without bound.
    """
    return SimulationConfig(
        duration=duration,
        pallet_period=2 * cases_per_pallet,
        cases_per_pallet_min=cases_per_pallet,
        cases_per_pallet_max=cases_per_pallet,
        items_per_case=20,
        read_rate=0.85,
        shelf_read_period=60,
        num_shelves=8,
        shelving_time_mean=10 * duration,  # nothing leaves: the graph grows
        shelving_time_jitter=0,
        belt_dwell=1,
        seed=seed,
    )


def duration_for(milestones: tuple[int, ...] | list[int], cases_per_pallet: int) -> int:
    """Trace length that comfortably reaches the largest milestone."""
    return int(max(milestones) / growth_per_epoch(cases_per_pallet)) + 200


@dataclass(frozen=True)
class MilestoneCost:
    """Windowed cost figures recorded when the graph crosses one milestone."""

    milestone: int
    nodes: int
    edges: int
    epoch: int
    epochs_in_window: int
    avg_update_s: float
    avg_inference_s: float
    avg_epoch_s: float
    complete_epoch_s: float


def run_sweep(
    sim: SimulationResult,
    milestones: tuple[int, ...] | list[int],
    params: InferenceParams | None = None,
    incremental: bool = True,
) -> dict:
    """Run one pipeline over ``sim`` and window costs at each milestone.

    Returns ``{"milestones": [MilestoneCost...], "messages": int,
    "cache_hits": int, "cache_misses": int, "total_s": float,
    "final_nodes": int, "final_edges": int}``.
    """
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(
        deployment,
        params or InferenceParams(),
        compression_level=2,
        incremental=incremental,
    )
    pending = sorted(milestones)
    rows: list[MilestoneCost] = []
    win_update = win_inference = win_wall = 0.0
    win_epochs = completes = 0
    comp_wall = 0.0
    comp_n = 0
    messages = 0
    started = time.perf_counter()
    for readings in sim.stream:
        t0 = time.perf_counter()
        output = spire.process_epoch(readings)
        wall = time.perf_counter() - t0
        messages += len(output.messages)
        win_update += output.update_seconds
        win_inference += output.inference_seconds
        win_wall += wall
        win_epochs += 1
        if output.complete:
            completes += 1
            comp_wall += wall
            comp_n += 1
        nodes = spire.graph.node_count
        if pending and nodes >= pending[0] and completes >= MIN_COMPLETES_PER_WINDOW:
            rows.append(
                MilestoneCost(
                    milestone=pending.pop(0),
                    nodes=nodes,
                    edges=spire.graph.edge_count,
                    epoch=readings.epoch,
                    epochs_in_window=win_epochs,
                    avg_update_s=win_update / win_epochs,
                    avg_inference_s=win_inference / win_epochs,
                    avg_epoch_s=win_wall / win_epochs,
                    complete_epoch_s=comp_wall / max(comp_n, 1),
                )
            )
            win_update = win_inference = win_wall = 0.0
            win_epochs = completes = comp_n = 0
            comp_wall = 0.0
    return {
        "milestones": rows,
        "messages": messages,
        "cache_hits": spire.inference.cache_hits,
        "cache_misses": spire.inference.cache_misses,
        "total_s": time.perf_counter() - started,
        "final_nodes": spire.graph.node_count,
        "final_edges": spire.graph.edge_count,
    }


# ---------------------------------------------------------------------------
# payload assembly
# ---------------------------------------------------------------------------


def calibrate(iterations: int = 2_000_000) -> float:
    """Seconds for a fixed pure-Python spin — a machine-speed yardstick.

    Recorded in every payload; :func:`check_regression` uses the ratio of
    two payloads' calibration scores to compare runs from different
    machines (a CI runner vs. the laptop that committed the baseline) on a
    common footing.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(iterations):
        acc += i & 7
    return time.perf_counter() - t0


def machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (ru_maxrss is
    kilobytes on Linux, bytes on macOS — normalised here)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return peak


def _sweep_payload(result: dict) -> dict:
    out = dict(result)
    out["milestones"] = [asdict(row) for row in result["milestones"]]
    return out


def run_table3(
    milestones: tuple[int, ...] | list[int] = DEFAULT_MILESTONES,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    compare_full: bool = False,
    params: InferenceParams | None = None,
) -> dict:
    """The full Table III benchmark: sweep, machine info, optional reference.

    With ``compare_full`` the same trace is also run through the full-scan
    pipeline (``incremental=False`` — identical output, no decision cache)
    and per-milestone speedups are attached.
    """
    config = table3_config(cases_per_pallet, duration_for(milestones, cases_per_pallet), seed)
    sim = WarehouseSimulator(config).run()
    payload: dict = {
        "workload": {
            "milestones": list(milestones),
            "cases_per_pallet": cases_per_pallet,
            "duration": config.duration,
            "seed": seed,
            "growth_per_epoch": growth_per_epoch(cases_per_pallet),
        },
        "machine": machine_info(),
        "calibration_s": calibrate(),
        "incremental": _sweep_payload(run_sweep(sim, milestones, params, incremental=True)),
    }
    if compare_full:
        payload["full_scan"] = _sweep_payload(run_sweep(sim, milestones, params, incremental=False))
        payload["speedup_vs_full_scan"] = _speedups(
            payload["full_scan"]["milestones"], payload["incremental"]["milestones"]
        )
    payload["peak_rss_kb"] = peak_rss_kb()
    return payload


def _speedups(before_rows: list[dict], after_rows: list[dict]) -> list[dict]:
    by_milestone = {row["milestone"]: row for row in before_rows}
    out = []
    for after in after_rows:
        before = by_milestone.get(after["milestone"])
        if before is None:
            continue
        out.append(
            {
                "milestone": after["milestone"],
                "avg_epoch": before["avg_epoch_s"] / max(after["avg_epoch_s"], 1e-12),
                "complete_epoch": before["complete_epoch_s"]
                / max(after["complete_epoch_s"], 1e-12),
            }
        )
    return out


def write_payload(payload: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# regression gating
# ---------------------------------------------------------------------------


def check_regression(
    current: dict, baseline: dict, max_regression: float = 0.25
) -> list[str]:
    """Compare a fresh payload against a committed baseline payload.

    Per shared milestone, the *calibration-normalised* ``avg_epoch_s`` may
    exceed the baseline's by at most ``max_regression`` (fractional).
    Normalisation divides each run's cost by its own :func:`calibrate`
    score, so a slower CI runner does not read as a code regression and a
    faster one does not mask a real regression.

    Returns a list of human-readable violations (empty = pass).
    """
    problems: list[str] = []
    cur_cal = current.get("calibration_s") or 1.0
    base_cal = baseline.get("calibration_s") or 1.0
    base_rows = {
        row["milestone"]: row for row in baseline["incremental"]["milestones"]
    }
    for row in current["incremental"]["milestones"]:
        base = base_rows.get(row["milestone"])
        if base is None:
            continue
        cur_norm = row["avg_epoch_s"] / cur_cal
        base_norm = base["avg_epoch_s"] / base_cal
        if cur_norm > base_norm * (1.0 + max_regression):
            problems.append(
                f"milestone {row['milestone']}: normalised avg-epoch cost "
                f"{cur_norm:.3f} exceeds baseline {base_norm:.3f} "
                f"by more than {max_regression:.0%}"
            )
    return problems


def load_payload(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())

"""Continuous-query serving over the compressed event stream.

SPIRE is a substrate *feeding* higher-level stream and query processors
(§I, §V-B); this package is that layer — the follow-up systems (SASE-style
complex event processing, the distributed RFID query processors in
PAPERS.md) motivate its shape.  Three pieces:

* :mod:`repro.serving.patterns` — standing predicates (tails, point
  watches, dwell/missing thresholds, compound containment anomalies)
  evaluated incrementally against each epoch's event batch;
* :mod:`repro.serving.engine` — the **shared fan-out tree**: a live
  incremental :class:`~repro.query.index.EventStreamIndex`, subscriptions
  keyed by canonical pattern identity so N subscribers to the same
  pattern cost one evaluation per epoch, per-subscriber bounded delivery
  queues with tiered backpressure (drop-oldest escalating to
  slow-consumer eviction), and serving counters;
* :mod:`repro.serving.server` / :mod:`repro.serving.client` — an asyncio
  TCP front-end speaking the length-prefixed binary protocol of
  :mod:`repro.serving.protocol` (batched per-epoch event frames when
  negotiated), fed by a coordinator pump so serving composes with
  sharded execution and zone failover;
* :mod:`repro.serving.frontend` — SO_REUSEPORT multi-process acceptors
  sharing one logical engine, plus optional uvloop installation.

See docs/SERVING.md for a quickstart and DESIGN.md §10 for the
architecture.
"""

from repro.serving.engine import (
    ServingStats,
    SharedRuntime,
    StandingQueryEngine,
    Subscription,
)
from repro.serving.patterns import (
    DwellExceeded,
    LeftWithoutContainer,
    MissingOverdue,
    Notification,
    ObjectWatch,
    Pattern,
    PlaceWatch,
    Tail,
    pattern_from_spec,
)
from repro.serving.server import SpireServer, pump_coordinator
from repro.serving.client import ClientSubscription, ServingError, SpireClient
from repro.serving.frontend import MultiProcessFrontend, try_install_uvloop

__all__ = [
    "ClientSubscription",
    "DwellExceeded",
    "MultiProcessFrontend",
    "ServingError",
    "SharedRuntime",
    "try_install_uvloop",
    "LeftWithoutContainer",
    "MissingOverdue",
    "Notification",
    "ObjectWatch",
    "Pattern",
    "PlaceWatch",
    "ServingStats",
    "SpireClient",
    "SpireServer",
    "StandingQueryEngine",
    "Subscription",
    "Tail",
    "pattern_from_spec",
    "pump_coordinator",
]

"""Telemetry substrate unit tests (DESIGN.md §11, docs/OBSERVABILITY.md).

Pins the three properties :mod:`repro.obs.metrics` is built around:
near-zero overhead when disabled (the null registry), deterministic
mergeability (fixed log₂ buckets, counters sum, gauges last-write-wins),
and byte-stable Prometheus rendering.  Also covers the JSONL trace log.
"""

from __future__ import annotations

import io
import json
from time import perf_counter

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    counters_only,
    merge_snapshots,
    render_prometheus,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.trace import TraceLog


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


def test_counter_increments():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(10)
    g.inc(3)
    g.dec()
    assert g.value == 12


def test_histogram_log2_bucketing_is_exact():
    h = Histogram()
    # bucket e counts observations in (2**(e-1), 2**e]
    h.observe(1.0)  # exactly 2**0 -> bucket 0
    h.observe(0.75)  # (0.5, 1] -> bucket 0
    h.observe(2.0)  # exactly 2**1 -> bucket 1
    h.observe(2.5)  # (2, 4] -> bucket 2
    h.observe(0.0)  # <= 0 -> the zero bucket
    assert h.count == 5
    assert h.sum == pytest.approx(6.25)
    positive = {e: n for e, n in h.buckets.items() if e > -(1 << 20)}
    assert positive == {0: 2, 1: 1, 2: 1}
    zero = [n for e, n in h.buckets.items() if e <= -(1 << 20)]
    assert zero == [1]


def test_histogram_buckets_align_across_instances():
    """Merging is pointwise addition because the grid is fixed."""
    a, b = Histogram(), Histogram()
    for value in (0.3, 1.5, 100.0):
        a.observe(value)
        b.observe(value)
    merged = Histogram()
    merged._merge_fields(a._snapshot_fields())
    merged._merge_fields(b._snapshot_fields())
    assert merged.count == 6
    assert merged.buckets == {e: 2 * n for e, n in a.buckets.items()}


def test_span_timer_observes_elapsed_seconds():
    h = Histogram()
    with h.time() as span:
        deadline = perf_counter() + 0.002
        while perf_counter() < deadline:
            pass
    assert h.count == 1
    assert span.seconds >= 0.002
    assert h.sum == pytest.approx(span.seconds)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_factories_are_idempotent():
    registry = MetricRegistry()
    a = registry.counter("spire_x_total", "help", zone="a")
    b = registry.counter("spire_x_total", zone="a")
    assert a is b
    # different labels -> different series
    assert registry.counter("spire_x_total", zone="b") is not a


def test_registry_rejects_kind_conflicts():
    registry = MetricRegistry()
    registry.counter("spire_x_total")
    with pytest.raises(TypeError, match="already registered as counter"):
        registry.gauge("spire_x_total")


def test_const_labels_stamp_every_series():
    registry = MetricRegistry(const_labels={"zone": "inbound"})
    registry.counter("spire_x_total").inc()
    registry.counter("spire_y_total", mode="partial").inc()
    labels = {e["name"]: e["labels"] for e in registry.snapshot()["series"]}
    assert labels["spire_x_total"] == {"zone": "inbound"}
    assert labels["spire_y_total"] == {"mode": "partial", "zone": "inbound"}


def test_snapshot_restore_round_trip():
    registry = MetricRegistry(const_labels={"zone": "a"})
    registry.counter("spire_x_total", "things").inc(7)
    registry.gauge("spire_depth").set(3)
    registry.histogram("spire_cost_seconds").observe(0.25)
    snapshot = registry.snapshot()

    fresh = MetricRegistry(const_labels={"zone": "a"})
    fresh.restore(snapshot)
    assert fresh.snapshot() == snapshot
    # restored instruments keep accumulating from the restored values
    fresh.counter("spire_x_total", zone="a").inc()
    assert fresh.counter("spire_x_total", zone="a").value == 8


def test_snapshot_json_round_trip():
    registry = MetricRegistry()
    registry.histogram("spire_cost_seconds", "cost").observe(0.1)
    snapshot = registry.snapshot()
    assert snapshot_from_json(snapshot_to_json(snapshot)) == snapshot


# ---------------------------------------------------------------------------
# null registry (disabled path)
# ---------------------------------------------------------------------------


def test_null_registry_is_inert():
    assert NULL_REGISTRY.enabled is False
    counter = NULL_REGISTRY.counter("spire_x_total")
    counter.inc(10)
    gauge = NULL_REGISTRY.gauge("spire_depth")
    gauge.set(5)
    with NULL_REGISTRY.histogram("spire_cost_seconds").time():
        pass
    assert NULL_REGISTRY.snapshot() == {"series": [], "help": {}}
    NULL_REGISTRY.restore({"series": [{"name": "x", "kind": "counter",
                                       "labels": {}, "value": 1}]})
    assert NULL_REGISTRY.snapshot() == {"series": [], "help": {}}


def test_null_registry_shares_one_instrument():
    """Disabled factories allocate nothing: every call hands out the
    same shared no-op object, whatever the name or kind."""
    seen = {
        NULL_REGISTRY.counter("a"),
        NULL_REGISTRY.gauge("b", zone="z"),
        NULL_REGISTRY.histogram("c"),
    }
    assert len(seen) == 1


def test_null_instrument_overhead_is_bounded():
    """The disabled hot path costs one no-op method call per event.

    Bounds it loosely (shared CI runners jitter) against an enabled
    Counter.inc loop: the no-op must not be slower than ~3x the real
    instrument — in practice it is faster, since it touches no state.
    """
    null_counter = NULL_REGISTRY.counter("spire_x_total")
    real_counter = MetricRegistry().counter("spire_x_total")
    n = 50_000

    def loop_seconds(counter) -> float:
        best = float("inf")
        for _ in range(5):
            start = perf_counter()
            for _ in range(n):
                counter.inc()
            best = min(best, perf_counter() - start)
        return best

    loop_seconds(null_counter)  # warm-up
    null_s = loop_seconds(null_counter)
    real_s = loop_seconds(real_counter)
    assert null_s <= real_s * 3.0, (null_s, real_s)


# ---------------------------------------------------------------------------
# merging
# ---------------------------------------------------------------------------


def _zone_snapshot(zone: str, count: int, depth: int) -> dict:
    registry = MetricRegistry(const_labels={"zone": zone})
    registry.counter("spire_x_total", "things").inc(count)
    registry.gauge("spire_depth", "depth").set(depth)
    h = registry.histogram("spire_cost_seconds", "cost")
    for _ in range(count):
        h.observe(0.25)
    return registry.snapshot()


def test_merge_sums_counters_and_histograms():
    merged = merge_snapshots([_zone_snapshot("a", 3, 10), _zone_snapshot("a", 4, 20)])
    by_kind = {e["kind"]: e for e in merged["series"]}
    assert by_kind["counter"]["value"] == 7
    assert by_kind["gauge"]["value"] == 20  # last write wins
    assert by_kind["histogram"]["count"] == 7
    assert by_kind["histogram"]["sum"] == pytest.approx(7 * 0.25)


def test_merge_keeps_distinct_zones_separate():
    merged = merge_snapshots([_zone_snapshot("a", 3, 1), _zone_snapshot("b", 4, 2)])
    counters = {
        e["labels"]["zone"]: e["value"]
        for e in merged["series"]
        if e["kind"] == "counter"
    }
    assert counters == {"a": 3, "b": 4}


def test_merge_rejects_kind_conflicts():
    a = {"series": [{"name": "x", "kind": "counter", "labels": {}, "value": 1}]}
    b = {"series": [{"name": "x", "kind": "gauge", "labels": {}, "value": 1}]}
    with pytest.raises(TypeError, match="conflicting kinds"):
        merge_snapshots([a, b])


def test_counters_only_projects_the_deterministic_subset():
    projected = counters_only(_zone_snapshot("a", 3, 10))
    assert [e["kind"] for e in projected["series"]] == ["counter"]
    assert projected["help"]  # help text survives the projection


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def test_render_prometheus_shape():
    text = render_prometheus(_zone_snapshot("a", 2, 5))
    lines = text.splitlines()
    assert "# TYPE spire_x_total counter" in lines
    assert 'spire_x_total{zone="a"} 2' in lines
    assert "# HELP spire_depth depth" in lines
    assert 'spire_depth{zone="a"} 5' in lines
    # histogram: cumulative le buckets, then +Inf, _sum, _count
    assert 'spire_cost_seconds_bucket{zone="a",le="+Inf"} 2' in lines
    assert 'spire_cost_seconds_count{zone="a"} 2' in lines
    assert text.endswith("\n")


def test_render_prometheus_histogram_buckets_are_cumulative():
    registry = MetricRegistry()
    h = registry.histogram("spire_cost_seconds")
    for value in (0.3, 0.4, 1.5):  # two in bucket (0.25, 0.5], one in (1, 2]
        h.observe(value)
    lines = render_prometheus(registry.snapshot()).splitlines()
    buckets = [line for line in lines if "_bucket" in line]
    assert buckets == [
        'spire_cost_seconds_bucket{le="0.5"} 2',
        'spire_cost_seconds_bucket{le="2"} 3',
        'spire_cost_seconds_bucket{le="+Inf"} 3',
    ]


def test_render_prometheus_zero_bucket_renders_le_zero():
    registry = MetricRegistry()
    registry.histogram("spire_cost_seconds").observe(0.0)
    text = render_prometheus(registry.snapshot())
    assert 'spire_cost_seconds_bucket{le="0"} 1' in text


def test_render_prometheus_is_deterministic():
    # same series registered in different orders -> identical text
    a = MetricRegistry()
    a.counter("spire_b_total", zone="z2").inc(2)
    a.counter("spire_a_total").inc(1)
    a.counter("spire_b_total", zone="z1").inc(3)
    b = MetricRegistry()
    b.counter("spire_b_total", zone="z1").inc(3)
    b.counter("spire_b_total", zone="z2").inc(2)
    b.counter("spire_a_total").inc(1)
    assert render_prometheus(a.snapshot()) == render_prometheus(b.snapshot())


def test_render_prometheus_escapes_label_values():
    registry = MetricRegistry()
    registry.counter("spire_x_total", path='a"b\\c').inc()
    text = render_prometheus(registry.snapshot())
    assert 'path="a\\"b\\\\c"' in text


def test_render_prometheus_empty_snapshot_is_empty_string():
    assert render_prometheus({"series": [], "help": {}}) == ""


# ---------------------------------------------------------------------------
# trace log
# ---------------------------------------------------------------------------


def test_trace_log_writes_jsonl_records():
    buffer = io.StringIO()
    trace = TraceLog(buffer)
    trace.epoch(12, {"update": 0.001, "inference": 0.002}, dirty_nodes=4, zone="a")
    trace.span("checkpoint", 12, 0.5, zone="a")
    trace.close()  # does not close a caller-owned stream

    records = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert trace.records_written == 2
    assert records[0]["kind"] == "epoch"
    assert records[0]["epoch"] == 12
    assert records[0]["spans"] == {"update": 0.001, "inference": 0.002}
    assert records[0]["dirty_nodes"] == 4
    assert records[0]["zone"] == "a"
    assert records[1] == pytest.approx(
        dict(records[1], kind="span", name="checkpoint", seconds=0.5, epoch=12)
    )
    assert all(record["t"] >= 0 for record in records)


def test_trace_log_owns_path_destinations(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceLog(path) as trace:
        trace.epoch(1, {"update": 0.0})
        trace.epoch(2, {"update": 0.0})
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert [json.loads(line)["epoch"] for line in lines] == [1, 2]

"""One-command mini-reproduction of the paper's headline results.

Runs compact versions of the key Section VI experiments (smaller traces
than the benchmarks, so this finishes in about a minute) and prints a
report with ASCII charts.  For the full benchmark-grade reproduction run
``pytest benchmarks/ --benchmark-only -s``; measured-vs-paper tables live
in EXPERIMENTS.md.

Usage:  python examples/reproduce_paper.py
"""

from repro import InferenceParams, SimulationConfig, WarehouseSimulator
from repro.experiments.runner import ground_truth_stream, run_smurf, run_spire
from repro.metrics.accuracy import ScoringPolicy
from repro.metrics.events import match_events
from repro.metrics.sizing import compression_ratio, location_only
from repro.metrics.timeseries import ascii_chart, sparkline


def trace(read_rate: float, seed: int = 7, anomaly: int = 0):
    return WarehouseSimulator(
        SimulationConfig(
            duration=900,
            pallet_period=150,
            cases_per_pallet_min=3,
            cases_per_pallet_max=3,
            items_per_case=5,
            read_rate=read_rate,
            shelf_read_period=20,
            num_shelves=2,
            shelving_time_mean=240,
            shelving_time_jitter=60,
            anomaly_period=anomaly,
            seed=seed,
        )
    ).run()


def headline_accuracy() -> None:
    print("== Accuracy vs. read rate (paper Fig. 9(d)) ==")
    rates = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    location, containment = [], []
    for rate in rates:
        report = run_spire(trace(rate), policies=(ScoringPolicy.ALL,))
        acc = report.accuracy[ScoringPolicy.ALL]
        location.append((rate, acc.location_error_rate))
        containment.append((rate, acc.containment_error_rate))
        print(f"  read rate {rate:.1f}: location err {acc.location_error_rate:6.1%}   "
              f"containment err {acc.containment_error_rate:6.1%}")
    print()
    print(ascii_chart({"location": location, "containment": containment},
                      width=48, height=10))
    print("\npaper claim: both errors around/below 10% for read rates >= 0.8\n")


def headline_compression() -> None:
    print("== Compression vs. read rate (paper Figs. 11(b)/(c)) ==")
    rates = [0.5, 0.7, 0.9, 1.0]
    rows = []
    for rate in rates:
        sim = trace(rate, seed=11)
        l1 = run_spire(sim, compression_level=1, score=False)
        l2 = run_spire(sim, compression_level=2, score=False)
        rows.append((rate, l1.compression_ratio, l2.compression_ratio))
        print(f"  read rate {rate:.1f}: level-1 {l1.compression_ratio:6.1%}   "
              f"level-2 {l2.compression_ratio:6.1%}")
    best = min(r[2] for r in rows)
    print(f"\npaper claim: level-2 wins above a ~0.65 crossover; measured best "
          f"level-2 ratio here {best:.1%} (longer traces compress further)\n")


def headline_smurf() -> None:
    print("== SPIRE vs. SMURF (paper Fig. 11(a)) ==")
    sim = trace(0.6, seed=13)
    reference = location_only(ground_truth_stream(sim))
    tolerance = 2 * sim.config.shelf_read_period
    spire = run_spire(sim, compression_level=1)
    smurf = run_smurf(sim)
    spire_match = match_events(location_only(spire.messages), reference, tolerance)
    smurf_match = match_events(location_only(smurf.messages), reference, tolerance)
    print(f"  SPIRE:  F={spire_match.f_measure:.3f} recall={spire_match.recall:.3f} "
          f"loc err={spire.accuracy[ScoringPolicy.ALL].location_error_rate:.1%} "
          f"ratio={compression_ratio(location_only(spire.messages), spire.raw_bytes):.1%}")
    print(f"  SMURF:  F={smurf_match.f_measure:.3f} recall={smurf_match.recall:.3f} "
          f"loc err={smurf.accuracy.location_error_rate:.1%} "
          f"ratio={compression_ratio(location_only(smurf.messages), smurf.raw_bytes):.1%}")
    print("\npaper claim: SPIRE beats SMURF on error rate and compression;\n"
          "containment output is unique to SPIRE\n")


def headline_anomalies() -> None:
    print("== Anomaly detection (paper Figs. 9(e)/(f)) ==")
    sim = trace(0.9, seed=17, anomaly=120)
    from repro.metrics.delay import detection_delays

    delays_by_theta = []
    for theta in (0.5, 1.0, 1.5, 2.5):
        report = run_spire(
            sim, params=InferenceParams(theta=theta), compression_level=1, score=False
        )
        detection = detection_delays(report.messages, sim.truth.vanished)
        delays_by_theta.append(detection.mean_delay)
        print(f"  theta={theta:3.1f}: detected {detection.detection_rate:5.0%} "
              f"of {len(sim.truth.vanished)} removals, mean delay {detection.mean_delay:5.1f}s")
    print(f"\n  delay vs theta: {sparkline(delays_by_theta)}  (higher theta -> faster)")
    print("\npaper claim: theta in [1, 2] balances error against detection delay\n")


def main() -> None:
    print("SPIRE mini-reproduction " + "=" * 40 + "\n")
    headline_accuracy()
    headline_compression()
    headline_smurf()
    headline_anomalies()
    print("done — full benchmark suite: pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()

"""Range (level-1) compression (Section V-B).

The compressor keeps each object's last *reported* state — open location
interval, open containment interval, missing flag — and emits messages only
when the newly inferred state differs:

* location change: ``EndLocation`` for the previous interval, then
  ``StartLocation`` for the new one;
* object inferred missing: ``EndLocation`` then a singleton ``Missing``
  (the open containment, if any, is *not* ended — §V-A allows a containment
  pair to enclose missing events);
* containment change: ``EndContainment`` and/or ``StartContainment``.

Location and containment are compressed independently, so the output can be
split into two streams and either suppressed (§V-B property *i*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.locations import UNKNOWN_COLOR
from repro.events.messages import (
    EventMessage,
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
)
from repro.model.objects import TagId


@dataclass(slots=True)
class ObjectState:
    """Last reported state of one object inside a compressor.

    Attributes:
        location: Open location interval as ``(place, vs)``; ``None`` when
            no interval is open (object missing or brand new).
        last_place: Most recent reported place (for Missing messages).
        is_missing: True after a Missing was emitted and before the object
            reappears.
        containment: Open containment interval as ``(container, vs)``.
    """

    location: tuple[int, int] | None = None
    last_place: int | None = None
    is_missing: bool = False
    containment: tuple[TagId, int] | None = None


class RangeCompressor:
    """Stateful level-1 compressor; one instance per output stream."""

    #: compression level implemented (used in reports)
    level = 1

    def __init__(self, emit_location: bool = True, emit_containment: bool = True) -> None:
        self._states: dict[TagId, ObjectState] = {}
        self._emit_location = emit_location
        self._emit_containment = emit_containment

    # ------------------------------------------------------------------

    def observe(
        self,
        tag: TagId,
        location: int,
        container: TagId | None,
        now: int,
    ) -> list[EventMessage]:
        """Report one object's newly inferred state; returns emitted messages.

        ``location`` may be :data:`~repro.core.graph.UNKNOWN_COLOR` to
        report the object missing.
        """
        state = self._states.setdefault(tag, ObjectState())
        out: list[EventMessage] = []
        if self._emit_containment:
            out.extend(self._containment_delta(tag, state, container, now))
        else:
            self._track_containment(state, container, now)
        if self._emit_location:
            out.extend(self._location_delta(tag, state, location, now))
        return out

    def depart(self, tag: TagId, now: int) -> list[EventMessage]:
        """Close all open intervals: the object left through a proper exit."""
        state = self._states.pop(tag, None)
        if state is None:
            return []
        out: list[EventMessage] = []
        if state.containment is not None and self._emit_containment:
            container, vs = state.containment
            out.append(end_containment(tag, container, vs, now))
        if state.location is not None and self._emit_location:
            place, vs = state.location
            out.append(end_location(tag, place, vs, now))
        return out

    def state_of(self, tag: TagId) -> ObjectState | None:
        """Current reported state of ``tag`` (read-only use)."""
        return self._states.get(tag)

    def forget(self, tag: TagId) -> None:
        """Drop ``tag``'s state without emitting anything.

        Only safe when the object has no open intervals (nothing to close);
        used by staleness eviction, which checks exactly that.
        """
        self._states.pop(tag, None)

    @property
    def tracked_objects(self) -> int:
        """Number of objects with reported state in this compressor."""
        return len(self._states)

    # ------------------------------------------------------------------

    def _location_delta(
        self, tag: TagId, state: ObjectState, location: int, now: int
    ) -> list[EventMessage]:
        out: list[EventMessage] = []
        if location == UNKNOWN_COLOR:
            if state.location is not None:
                place, vs = state.location
                out.append(end_location(tag, place, vs, now))
                out.append(missing(tag, place, now))
                state.location = None
                state.is_missing = True
            elif not state.is_missing:
                # never had a reported location (e.g. first estimate is
                # already unknown); report missing from the last known
                # place if any, otherwise stay silent
                if state.last_place is not None:
                    out.append(missing(tag, state.last_place, now))
                state.is_missing = True
            return out

        if state.location is None:
            out.append(start_location(tag, location, now))
            state.location = (location, now)
            state.last_place = location
            state.is_missing = False
            return out

        place, vs = state.location
        if place != location:
            out.append(end_location(tag, place, vs, now))
            out.append(start_location(tag, location, now))
            state.location = (location, now)
            state.last_place = location
        return out

    def _containment_delta(
        self, tag: TagId, state: ObjectState, container: TagId | None, now: int
    ) -> list[EventMessage]:
        out: list[EventMessage] = []
        current = state.containment[0] if state.containment is not None else None
        if current == container:
            return out
        if state.containment is not None:
            old, vs = state.containment
            out.append(end_containment(tag, old, vs, now))
            state.containment = None
        if container is not None:
            out.append(start_containment(tag, container, now))
            state.containment = (container, now)
        return out

    def _track_containment(self, state: ObjectState, container: TagId | None, now: int) -> None:
        """Track containment state without emitting (location-only streams)."""
        current = state.containment[0] if state.containment is not None else None
        if current != container:
            state.containment = (container, now) if container is not None else None

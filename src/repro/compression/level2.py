"""Level-2 compression: location suppression via containment (Section V-C).

Containment events are emitted exactly as in level 1, but location events
of an object with an open reported containment are suppressed — the
object's location is recoverable from its container's, so only top-level
containers' locations reach the output (Fig. 8).

Two synchronisation points keep the stream decompressible without loss:

* at **containment start**, if the container already has reported location
  state (its interval opened in an earlier epoch), the child's external
  location is aligned to it explicitly — afterwards the decompressor's
  propagation takes over;
* at **containment end**, catch-up messages re-establish the child's own
  location stream (the paper's ``StartLocation(C2, L2, T3)`` in Fig. 8);
  they are emitted unconditionally and the decompressor's duplicate
  suppression removes any redundancy.
"""

from __future__ import annotations

from repro.compression.level1 import ObjectState, RangeCompressor
from repro.events.messages import (
    EventMessage,
    end_location,
    missing,
    start_location,
)
from repro.model.locations import UNKNOWN_COLOR
from repro.model.objects import TagId


class ContainmentCompressor:
    """Stateful level-2 compressor.

    Composes a :class:`RangeCompressor` for containment deltas and for the
    location streams of *uncontained* objects, adding the suppression,
    alignment and catch-up logic for contained ones.
    """

    level = 2

    def __init__(self) -> None:
        self._inner = RangeCompressor(emit_location=True, emit_containment=True)

    # ------------------------------------------------------------------

    def observe(
        self,
        tag: TagId,
        location: int,
        container: TagId | None,
        now: int,
    ) -> list[EventMessage]:
        """Report one object's newly inferred state; returns emitted messages."""
        state = self._inner._states.setdefault(tag, ObjectState())
        out: list[EventMessage] = []

        # containment first: its transitions decide whether location events
        # are suppressed, aligned, or caught up this epoch
        was_contained = state.containment is not None
        former_container = state.containment[0] if was_contained else None
        containment_messages = self._inner._containment_delta(tag, state, container, now)
        is_contained = state.containment is not None

        if is_contained and (not was_contained or containment_messages):
            # containment starts (or the container changed): bring the
            # child's external location in line before suppression resumes
            ends = [m for m in containment_messages if m.ve != float("inf")]
            starts = [m for m in containment_messages if m.ve == float("inf")]
            out.extend(ends)
            if was_contained:
                # re-parented: the decompressor's view tracked the former
                # container and cannot be reconstructed here — emit the
                # unconditional catch-up (duplicates are suppressed there)
                out.extend(self._catch_up(tag, state, location, former_container, now))
            else:
                out.extend(self._align_with(tag, state, container, now))
            out.extend(starts)
            return out

        out.extend(containment_messages)

        if is_contained:
            # suppressed: a contained object's location equals its
            # container's (guaranteed by §IV-E conflict resolution); the
            # decompressor advances it alongside the container
            return out

        if was_contained:
            # containment just ended: catch the external stream up with the
            # actual location
            out.extend(self._catch_up(tag, state, location, former_container, now))
            return out

        # ordinary uncontained object: plain level-1 location handling
        out.extend(self._inner._location_delta(tag, state, location, now))
        return out

    def depart(self, tag: TagId, now: int) -> list[EventMessage]:
        """Close all open intervals: the object left through a proper exit."""
        return self._inner.depart(tag, now)

    def state_of(self, tag: TagId):
        return self._inner.state_of(tag)

    def forget(self, tag: TagId) -> None:
        """Drop ``tag``'s state without emitting (see RangeCompressor.forget)."""
        self._inner.forget(tag)

    @property
    def tracked_objects(self) -> int:
        return self._inner.tracked_objects

    # ------------------------------------------------------------------

    def _align_with(
        self, tag: TagId, state: ObjectState, container: TagId | None, now: int
    ) -> list[EventMessage]:
        """Align the child's external location with the container's view.

        Only needed when the container's location state predates this epoch
        (an interval opened earlier produces no new message for the
        decompressor to propagate).  When the container has no reported
        state yet, its own location messages arrive later this epoch and
        propagation covers the child.
        """
        view = self._external_view(container)
        if view is None:
            return []
        mode, place = view
        out: list[EventMessage] = []
        if mode == "open":
            if state.location is not None:
                open_place, vs = state.location
                if open_place == place:
                    return []
                out.append(end_location(tag, open_place, vs, now))
            out.append(start_location(tag, place, now))
            state.location = (place, now)
            state.last_place = place
            state.is_missing = False
            return out
        # container is reported missing: the child inherits that
        if state.location is not None:
            open_place, vs = state.location
            out.append(end_location(tag, open_place, vs, now))
            out.append(missing(tag, open_place, now))
            state.location = None
        elif not state.is_missing and state.last_place is not None:
            out.append(missing(tag, state.last_place, now))
        state.is_missing = True
        return out

    def _catch_up(
        self,
        tag: TagId,
        state: ObjectState,
        location: int,
        former_container: TagId | None,
        now: int,
    ) -> list[EventMessage]:
        """Synchronise an object's location stream after containment ends.

        Catch-up messages are emitted unconditionally (the paper's
        ``StartLocation(C2, L2, T3)``): while the object was contained, the
        decompressor advanced its location with the container, so the
        compressor's own record cannot prove the streams agree.  Redundant
        copies are removed by the decompressor's duplicate suppression.
        """
        out: list[EventMessage] = []
        open_interval = state.location
        if location == UNKNOWN_COLOR:
            if open_interval is not None:
                place, vs = open_interval
                out.append(end_location(tag, place, vs, now))
                out.append(missing(tag, place, now))
                state.location = None
                state.is_missing = True
                return out
            # No open interval of its own — but the decompressor may show a
            # location propagated from the container while suppressed, and
            # its within-step ordering detaches the child (EndContainment)
            # before the container's own location messages apply.  Always
            # re-assert missing when any place can be named; the
            # decompressor suppresses it as a duplicate if already missing.
            place = state.last_place
            if place is None:
                view = self._external_view(former_container)
                if view is not None:
                    place = view[1]
            if place is not None:
                out.append(missing(tag, place, now))
            state.is_missing = True
            return out
        if open_interval is not None:
            place, vs = open_interval
            out.append(end_location(tag, place, vs, now))
        out.append(start_location(tag, location, now))
        state.location = (location, now)
        state.last_place = location
        state.is_missing = False
        return out

    def _external_view(self, tag: TagId | None) -> tuple[str, int | None] | None:
        """The location state a decompressor currently attributes to ``tag``.

        Returns ``("open", place)``, ``("missing", last_place)`` or ``None``
        (no reported state).  Ascends the reported containment chain, since
        a nested container's own location stream is suppressed too.
        """
        seen: set[TagId] = set()
        while tag is not None and tag not in seen:
            seen.add(tag)
            state = self._inner.state_of(tag)
            if state is None:
                return None
            if state.containment is not None:
                tag = state.containment[0]
                continue
            if state.is_missing:
                return ("missing", state.last_place)
            if state.location is not None:
                return ("open", state.location[0])
            return None
        return None

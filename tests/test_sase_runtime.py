"""Runtime semantics of compiled patterns on hand-built streams.

Each test drives :class:`repro.sase.runtime.PatternRuntime` (through
``compile_pattern(...).runtime``) with explicit event messages, pinning
the SEQ/Kleene/negation/window/partition/ONCE-PER-EPOCH behaviors the
byte-equivalence suite then exercises at scale.
"""

from __future__ import annotations

from repro.events.messages import (
    end_location,
    missing,
    start_containment,
    start_location,
)
from repro.model.objects import PackagingLevel, TagId
from repro.query.index import EventStreamIndex
from repro.sase import compile_pattern

ITEM = TagId(PackagingLevel.ITEM, 1)
OTHER = TagId(PackagingLevel.ITEM, 2)
CASE = TagId(PackagingLevel.CASE, 9)


def run(pattern, *epochs, index=None):
    """Feed ``(epoch, [messages])`` pairs; return the flat match list."""
    matches = []
    for epoch, messages in epochs:
        matches.extend(pattern.runtime.process_epoch(epoch, messages, index))
    return matches


class TestSequencing:
    def test_two_step_sequence_with_equivalence(self):
        pattern = compile_pattern(
            "SEQ(arrival a, departure d) WHERE d.obj == a.obj"
        )
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1)]),
            (2, []),
            (3, [end_location(ITEM, 3, 1, 3)]),
        )
        assert len(matches) == 1
        match = matches[0]
        assert match.epoch == 3 and match.key == ITEM
        assert match.bindings["a"].msg.place == 3
        assert match.bindings["d"].msg.ve == 3

    def test_skip_till_next_match_ignores_irrelevant_events(self):
        pattern = compile_pattern(
            "SEQ(arrival a, departure d) WHERE d.obj == a.obj AND d.place == a.place"
        )
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1)]),
            # a containment event and another object's departure interleave
            (2, [start_containment(ITEM, CASE, 2), end_location(OTHER, 3, 0, 2)]),
            (4, [end_location(ITEM, 3, 1, 4)]),
        )
        assert [m.epoch for m in matches] == [4]

    def test_partitions_are_independent(self):
        pattern = compile_pattern(
            "SEQ(arrival a, departure d) WHERE d.obj == a.obj"
        )
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1), start_location(OTHER, 4, 1)]),
            (2, [end_location(OTHER, 4, 1, 2)]),
            (3, [end_location(ITEM, 3, 1, 3)]),
        )
        assert [(m.key, m.epoch) for m in matches] == [(OTHER, 2), (ITEM, 3)]
        assert pattern.runtime.partition_count == 0  # all stacks drained


class TestWindow:
    def test_window_blocks_late_completions(self):
        pattern = compile_pattern(
            "SEQ(arrival a, departure d) WHERE d.obj == a.obj WITHIN 2 EPOCHS"
        )
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1)]),
            (5, [end_location(ITEM, 3, 1, 5)]),
        )
        assert matches == []
        # the expired instance was pruned, not left to leak
        assert pattern.runtime.active_instances == 0
        assert pattern.runtime.stats.prunes == 1

    def test_window_is_anchored_at_the_first_events_vs(self):
        pattern = compile_pattern(
            "SEQ(arrival a, departure d) WHERE d.obj == a.obj WITHIN 3 EPOCHS"
        )
        # the arrival message is delivered at epoch 3 but its interval
        # opened at vs=1: the window counts from vs
        matches = run(
            pattern,
            (3, [start_location(ITEM, 3, 1)]),
            (4, [end_location(ITEM, 3, 1, 4)]),
        )
        assert [m.epoch for m in matches] == [4]


class TestKleene:
    def test_trailing_kleene_refires_per_extension(self):
        pattern = compile_pattern(
            "SEQ(arrival a, contain+ c) WHERE c.obj == a.obj"
        )
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1)]),
            (2, [start_containment(ITEM, CASE, 2)]),
            (3, [start_containment(ITEM, TagId(PackagingLevel.CASE, 10), 3)]),
        )
        assert [m.epoch for m in matches] == [2, 3]
        assert [len(m.bindings["c"]) for m in matches] == [1, 2]

    def test_kleene_attr_reads_the_last_event_of_the_run(self):
        pattern = compile_pattern(
            "SEQ(arrival a, contain+ c) WHERE c.obj == a.obj AND c.vs > 2"
        )
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1)]),
            (2, [start_containment(ITEM, CASE, 2)]),  # vs=2 rejected
            (3, [start_containment(ITEM, CASE, 3)]),  # vs=3 admitted
        )
        assert [m.epoch for m in matches] == [3]


class TestNegationAsAbsence:
    DWELL = (
        "SEQ(arrival a, !departure d) "
        "WHERE a.place == 3 AND d.obj == a.obj AND d.place == 3 "
        "WITHIN 3 EPOCHS"
    )

    def test_fires_when_the_window_elapses_without_the_negated_event(self):
        pattern = compile_pattern(self.DWELL)
        matches = run(
            pattern,
            (0, [start_location(ITEM, 3, 0)]),
            (1, []), (2, []), (3, []),
        )
        assert [m.epoch for m in matches] == [3]

    def test_negated_event_kills_the_pending_instance(self):
        pattern = compile_pattern(self.DWELL)
        matches = run(
            pattern,
            (0, [start_location(ITEM, 3, 0)]),
            (2, [end_location(ITEM, 3, 0, 2)]),
            (3, []), (4, []),
        )
        assert matches == [] and pattern.runtime.stats.kills == 1

    def test_kill_at_another_place_does_not_apply(self):
        pattern = compile_pattern(self.DWELL)
        matches = run(
            pattern,
            (0, [start_location(ITEM, 3, 0)]),
            (2, [end_location(ITEM, 7, 0, 2)]),  # departure elsewhere
            (3, []),
        )
        assert [m.epoch for m in matches] == [3]

    def test_rearm_after_fire_fires_again(self):
        pattern = compile_pattern(self.DWELL)
        matches = run(
            pattern,
            (0, [start_location(ITEM, 3, 0)]),
            (3, []),  # first fire
            (5, [start_location(ITEM, 3, 5)]),  # re-arm the same partition
            (6, []), (7, []), (8, []),
        )
        assert [m.epoch for m in matches] == [3, 8]

    def test_spent_instance_does_not_refire(self):
        pattern = compile_pattern(self.DWELL)
        matches = run(
            pattern,
            (0, [start_location(ITEM, 3, 0)]),
            (3, []), (4, []), (5, []),
        )
        assert [m.epoch for m in matches] == [3]


class TestOncePerEpoch:
    def test_deduplicates_within_one_epoch_by_partition_key(self):
        pattern = compile_pattern("SEQ(location e) ONCE PER EPOCH")
        matches = run(
            pattern,
            (1, [start_location(ITEM, 3, 1), end_location(ITEM, 3, 1, 1),
                 start_location(OTHER, 4, 1)]),
            (2, [start_location(ITEM, 5, 2)]),
        )
        # epoch 1: ITEM fires once (two events), OTHER once; epoch 2 resets
        assert [(m.epoch, m.key) for m in matches] == [
            (1, ITEM), (1, OTHER), (2, ITEM),
        ]


class TestPrime:
    DWELL = TestNegationAsAbsence.DWELL

    def test_prime_arms_open_intervals_with_their_true_vs(self):
        pattern = compile_pattern(self.DWELL)
        index = EventStreamIndex([start_location(ITEM, 3, 2)])
        pattern.prime(index, 4)
        assert pattern.runtime.active_instances == 1
        # window counts from vs=2: fires at epoch 5 (age 3)
        matches = run(pattern, (5, []), index=index)
        assert [m.epoch for m in matches] == [5]
        # priming never skews the counters the metrics report
        assert pattern.runtime.stats.matches == 1

    def test_prime_is_a_noop_for_immediate_patterns(self):
        pattern = compile_pattern("SEQ(any e)")
        index = EventStreamIndex([start_location(ITEM, 3, 2)])
        pattern.prime(index, 4)
        assert pattern.runtime.active_instances == 0

    def test_prime_replays_missing_state(self):
        pattern = compile_pattern(
            "SEQ(missing m, !arrival a) WHERE a.obj == m.obj WITHIN 3 EPOCHS"
        )
        index = EventStreamIndex([
            start_location(ITEM, 3, 0),
            end_location(ITEM, 3, 0, 2),
            missing(ITEM, 3, 2),
        ])
        pattern.prime(index, 3)
        matches = run(pattern, (5, []), index=index)
        assert [m.epoch for m in matches] == [5]  # vs=2 + window 3

"""Serving layer — point-query throughput and subscription fan-out.

Drives :func:`repro.experiments.serving.run_serving_bench`: the Table III
high-injection workload grown to the 12k-object milestone behind the zone
coordinator, with 120 concurrent standing queries (every pattern kind
represented) evaluated on every published epoch and drained by a
deliberately slow consumer, then a point-query storm against the live
index — in-process and over loopback TCP.

Acceptance floors (also recorded in the ``serving`` section of
``BENCH_table3.json``):

* >= 1,000 point queries/second against the live index;
* >= 100 concurrent subscriptions sustained for the whole replay;
* bounded queues — the max observed depth never exceeds ``max_queue``
  (drop-oldest backpressure, not unbounded growth).
"""

from repro.experiments.serving import (
    MIN_POINT_QUERIES_PER_S,
    MIN_SUBSCRIPTIONS,
    check_serving,
    run_serving_bench,
)

from benchmarks._shared import PAPER_SCALE, Table

MILESTONE = 25_000 if PAPER_SCALE else 12_000
SUBSCRIPTIONS = 250 if PAPER_SCALE else 120


def test_serving_throughput_and_fanout():
    payload = run_serving_bench(milestone=MILESTONE, subscriptions=SUBSCRIPTIONS)

    subs = payload["subscriptions"]
    point = payload["point_queries"]
    tcp = payload["tcp_queries"]
    table = Table(
        f"Serving layer at the {MILESTONE}-object milestone",
        ["metric", "value"],
    )
    table.add("objects indexed", payload["workload"]["objects_indexed"])
    table.add("concurrent subscriptions", subs["count"])
    table.add("publish mean (ms)", subs["publish_mean_ms"])
    table.add("publish p95 (ms)", subs["publish_p95_ms"])
    table.add("notifications delivered", subs["notifications_delivered"])
    table.add("notifications dropped", subs["notifications_dropped"])
    table.add("max queue depth", subs["max_queue_depth"])
    table.add("point queries/s (in-proc)", int(point["queries_per_s"]))
    table.add("point queries/s (TCP)", int(tcp["queries_per_s"]))
    table.show()

    problems = check_serving(payload)
    assert not problems, "; ".join(problems)

    # the floors themselves, spelled out for a readable failure
    assert point["queries_per_s"] >= MIN_POINT_QUERIES_PER_S
    assert subs["count"] >= MIN_SUBSCRIPTIONS
    assert subs["max_queue_depth"] <= subs["max_queue"], "queue grew past bound"
    # the slow consumer must actually have exercised backpressure: with
    # drain_every=8 and high-injection traffic, drops are expected, and
    # every drop must be accounted (delivered + dropped covers the queues)
    assert subs["notifications_delivered"] > 0
    # TCP round trips clear the same floor with protocol overhead included
    assert tcp["queries_per_s"] >= MIN_POINT_QUERIES_PER_S

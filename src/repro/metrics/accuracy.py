"""Per-epoch inference accuracy against ground truth (Expts 1–4).

"An inference result is marked as an error if it is inconsistent with the
ground truth" (§VI-B).  The paper does not spell out the scored population,
so this module implements three policies (see DESIGN.md §3):

* ``ALL`` — every object present in the ground-truth snapshot (plus ghost
  objects SPIRE still tracks after a missed exit reading, scored against
  the unknown location).  The intuitive headline metric; used for the
  read-rate sensitivity experiment (Fig. 9(d)).
* ``INFERRED_ONLY`` — restricted to objects *not observed* this epoch,
  i.e. the decisions node inference actually had to make.
* ``HARD_ONLY`` — restricted further to unobserved objects whose true
  location differs from where SPIRE last saw them (moved, vanished or
  departed while unobserved).  These are the cases the fading-color /
  containment-propagation / unknown trade-off is about, and the population
  that reproduces the paper's Fig. 9(b)/(c)/(e) curve shapes.

Location scoring compares the estimate-store color with the true location
(the unknown location matches :data:`~repro.core.graph.UNKNOWN_COLOR`).
Containment scoring compares estimated and true direct containers over
objects where either side is non-trivial (a true container exists or a
container was estimated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.model.locations import UNKNOWN_COLOR
from repro.core.pipeline import Spire
from repro.model.truth import TruthSnapshot


class ScoringPolicy(Enum):
    """Which (object, epoch) pairs a location error rate is computed over."""

    ALL = "all"
    INFERRED_ONLY = "inferred_only"
    HARD_ONLY = "hard_only"


@dataclass
class AccuracyAccumulator:
    """Accumulates location/containment error counts across epochs.

    Attributes:
        policy: Scoring policy for the *location* metric (containment is
            always scored with the ALL population).
        exclude_colors: Location colors excluded from scoring — the paper
            excludes the entry door, which is used only to warm up the
            graph (§VI-A).
    """

    policy: ScoringPolicy = ScoringPolicy.ALL
    exclude_colors: frozenset[int] = frozenset()
    location_errors: int = 0
    location_total: int = 0
    containment_errors: int = 0
    containment_total: int = 0
    #: per-packaging-level (level value -> [errors, total]) breakdowns
    location_by_level: dict[int, list[int]] = field(default_factory=dict)
    containment_by_level: dict[int, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def score_epoch(self, spire: Spire, truth: TruthSnapshot) -> None:
        """Score one epoch: SPIRE's current estimates vs the truth snapshot."""
        estimates = spire.estimates
        graph = spire.graph

        # objects present in the world
        for tag, location in truth.locations.items():
            true_color = location.color
            if true_color in self.exclude_colors:
                continue
            current = estimates.get(tag)
            estimated_color = current.location if current is not None else UNKNOWN_COLOR
            observed = current.observed if current is not None else False

            if self._in_population(tag, true_color, observed, graph):
                self.location_total += 1
                level = self.location_by_level.setdefault(tag.level, [0, 0])
                level[1] += 1
                if estimated_color != true_color:
                    self.location_errors += 1
                    level[0] += 1

            true_container = truth.containers.get(tag)
            estimated_container = current.container if current is not None else None
            if true_container is not None or estimated_container is not None:
                self.containment_total += 1
                level = self.containment_by_level.setdefault(tag.level, [0, 0])
                level[1] += 1
                if estimated_container != true_container:
                    self.containment_errors += 1
                    level[0] += 1

        # ghost objects: SPIRE still tracks them, the world no longer holds
        # them (their exit reading was missed); the correct answer is the
        # unknown location
        for tag, current in estimates.items():
            if tag in truth.locations:
                continue
            if self._in_population(tag, UNKNOWN_COLOR, current.observed, graph):
                self.location_total += 1
                if current.location != UNKNOWN_COLOR:
                    self.location_errors += 1

    def _in_population(self, tag, true_color: int, observed: bool, graph) -> bool:
        if self.policy is ScoringPolicy.ALL:
            return True
        if observed:
            return False
        if self.policy is ScoringPolicy.INFERRED_ONLY:
            return True
        # HARD_ONLY: true location differs from where SPIRE last saw the tag
        node = graph.get(tag)
        last_seen_color = node.recent_color if node is not None else None
        return last_seen_color is not None and last_seen_color != true_color

    # ------------------------------------------------------------------

    @property
    def location_error_rate(self) -> float:
        """Fraction of scored location estimates inconsistent with truth."""
        if self.location_total == 0:
            return 0.0
        return self.location_errors / self.location_total

    @property
    def containment_error_rate(self) -> float:
        """Fraction of scored containment estimates inconsistent with truth."""
        if self.containment_total == 0:
            return 0.0
        return self.containment_errors / self.containment_total

    def location_error_rate_for_level(self, level: int) -> float:
        """Location error rate restricted to one packaging level."""
        errors, total = self.location_by_level.get(level, [0, 0])
        return errors / total if total else 0.0

    def containment_error_rate_for_level(self, level: int) -> float:
        """Containment error rate restricted to one packaging level."""
        errors, total = self.containment_by_level.get(level, [0, 0])
        return errors / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """Headline numbers as a flat dict (for reports and logs)."""
        return {
            "location_error_rate": self.location_error_rate,
            "containment_error_rate": self.containment_error_rate,
            "location_total": float(self.location_total),
            "containment_total": float(self.containment_total),
        }

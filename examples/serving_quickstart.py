"""Serving layer quickstart: standing queries over a live TCP server.

Boots a :class:`~repro.serving.server.SpireServer` on a loopback port,
pumps a simulated warehouse through a two-zone coordinator into it, and —
from a real TCP client — runs one-shot point queries, follows a live tail
of one shelf, and arms the compound containment-anomaly pattern
("an item left the dock while its case stayed"), which a staged anomaly
then triggers.  See docs/SERVING.md for the full tour.

Usage:  python examples/serving_quickstart.py
"""

import asyncio

from repro import SimulationConfig, SpireConfig, SpireSession, WarehouseSimulator
from repro.serving.client import SpireClient
from repro.serving.patterns import (
    PATTERN_LEFT_WITHOUT_CONTAINER,
    PATTERN_PLACE,
    PatternSpec,
)


async def run() -> None:
    config = SimulationConfig(
        duration=300,
        pallet_period=90,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=15,
        num_shelves=2,
        shelving_time_mean=120,
        shelving_time_jitter=30,
        anomaly_period=140,  # the simulator stages disappearances
        seed=11,
    )
    sim = WarehouseSimulator(config).run()
    registry = sim.layout.registry
    session = SpireSession(SpireConfig.from_simulation(sim, metrics=True, zone_map={
        "inbound": ["entry-door", "receiving-belt"],
        "floor": ["shelf-1", "shelf-2",
                  "packaging-area", "exit-belt", "exit-door"],
    }))

    async with session.serve() as server:   # port 0 -> ephemeral
        print(f"serving on {server.host}:{server.port}")
        client = await SpireClient.connect(server.host, server.port)
        try:
            # standing queries, armed before any data flows; subscribe()
            # returns a handle (.id, .next(), .cancel()) and accepts a
            # legacy spec or SASE pattern source text interchangeably
            shelf = registry.by_name("shelf-1").color
            tail = await client.subscribe(
                PatternSpec(PATTERN_PLACE, place=shelf)
            )
            await client.subscribe(
                PatternSpec(PATTERN_LEFT_WITHOUT_CONTAINER,
                            place=registry.by_name("shelf-1").color)
            )
            print(f"subscribed: place watch + containment anomaly on shelf-1")

            # replay the trace into the server (a live deployment would
            # pump epochs as readers deliver them)
            pumped = await session.pump(server, sim.stream)
            print(f"pumped {pumped} epochs")

            # one-shot queries over the same connection (mid-trace, while
            # the pallets were still on the floor)
            mid = pumped // 2
            tracked = sorted(sim.truth.snapshots[mid].locations)[:3]
            for tag in tracked:
                color = await client.location_of(tag, mid)
                name = registry.by_color(color).name if color is not None else "off-site"
                print(f"  {str(tag):10s} at epoch {mid}: {name}")

            # drain a few notifications that the standing queries produced
            shown = 0
            while shown < 5 and not client.notifications.empty():
                sub_id, note = client.notifications.get_nowait()
                label = "tail" if sub_id == tail.id else "anomaly"
                print(f"  [{label}] {note}")
                shown += 1

            stats = await client.stats()
            print(f"server: {stats['epochs_published']} epochs, "
                  f"{stats['notifications_delivered']} notifications, "
                  f"{stats['queries_served']} one-shot queries")

            # the METRICS op returns a Prometheus scrape of the whole
            # session: serving counters plus per-zone substrate counters
            metrics_text = await client.metrics()
            core = [line for line in metrics_text.splitlines()
                    if line.startswith(("spire_serving_epochs", "spire_readings_total"))]
            print("scraped metrics:")
            for line in core:
                print(f"  {line}")
        finally:
            await client.close()


def main() -> None:
    asyncio.run(run())


if __name__ == "__main__":
    main()

"""RFID-tagged objects and EPC-style tag identifiers.

The EPCglobal tag data standard (paper reference [8]) requires every tag id
to encode the *packaging level* of the object it is affixed to: an item, a
case, or a pallet.  SPIRE's graph model relies on this to arrange nodes into
layers, so the tag id type here carries the packaging level explicitly and
can render a standards-flavoured URN for display and serialization.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator, NamedTuple


class PackagingLevel(IntEnum):
    """Packaging level encoded in an EPC tag id.

    Levels are ordered: a higher level may (directly or transitively)
    contain objects of lower levels.  The numeric values double as graph
    layer indices in :mod:`repro.core.graph`.
    """

    ITEM = 1
    CASE = 2
    PALLET = 3

    @property
    def short_name(self) -> str:
        """Lower-case name used in URNs and trace dumps."""
        return self.name.lower()

    def levels_below(self) -> "list[PackagingLevel]":
        """Packaging levels strictly below this one, closest first."""
        return [PackagingLevel(v) for v in range(self.value - 1, 0, -1)]

    def levels_above(self) -> "list[PackagingLevel]":
        """Packaging levels strictly above this one, closest first."""
        max_level = max(PackagingLevel)
        return [PackagingLevel(v) for v in range(self.value + 1, max_level + 1)]


#: serial numbers fit 48 bits in every compact encoding (matches the
#: event/reading wire formats in :mod:`repro.events.codec` and
#: :mod:`repro.readers.codec`)
_KEY_SERIAL_BITS = 48
_KEY_SERIAL_MASK = (1 << _KEY_SERIAL_BITS) - 1


class TagId(NamedTuple):
    """An EPC-style tag identifier: packaging level plus a serial number.

    ``TagId`` is a value type (hashable, comparable) used as the object key
    throughout the library: in readings, in the graph model, in event
    messages, and in ground truth.
    """

    level: PackagingLevel
    serial: int

    def key(self) -> int:
        """Pack into a single unsigned 64-bit key: ``level << 48 | serial``.

        Serial 0 is reserved (see :class:`TagAllocator`), so key 0 never
        names a real object and doubles as the "no tag" sentinel in compact
        encodings (checkpoints, the distributed wire protocol).
        """
        return (self.level.value << _KEY_SERIAL_BITS) | self.serial

    @classmethod
    def from_key(cls, key: int) -> "TagId":
        """Inverse of :meth:`key`."""
        return cls(PackagingLevel(key >> _KEY_SERIAL_BITS), key & _KEY_SERIAL_MASK)

    def urn(self, company_prefix: str = "0614141") -> str:
        """Render an SGTIN-flavoured URN for this tag.

        The company prefix defaults to the EPCglobal documentation example.
        The URN is only for human consumption; equality and hashing use the
        (level, serial) pair.
        """
        return f"urn:epc:id:sgtin:{company_prefix}.{self.level.short_name}.{self.serial}"

    def __str__(self) -> str:
        return f"{self.level.short_name}:{self.serial}"


class TagAllocator:
    """Monotonic serial-number allocator, one counter per packaging level.

    The simulator uses a single allocator per run so every object in a trace
    has a unique tag.  Serials start at 1; serial 0 is reserved as a
    sentinel "no object" value in compact encodings.
    """

    def __init__(self) -> None:
        self._next_serial = {level: 1 for level in PackagingLevel}

    def allocate(self, level: PackagingLevel) -> TagId:
        """Return a fresh :class:`TagId` at the given packaging level."""
        serial = self._next_serial[level]
        self._next_serial[level] = serial + 1
        return TagId(level, serial)

    def allocate_many(self, level: PackagingLevel, count: int) -> list[TagId]:
        """Return ``count`` fresh tags at the given packaging level."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.allocate(level) for _ in range(count)]

    def allocated_count(self, level: PackagingLevel) -> int:
        """Number of tags handed out so far at ``level``."""
        return self._next_serial[level] - 1


def allocate_tags(level: PackagingLevel, count: int, start: int = 1) -> Iterator[TagId]:
    """Yield ``count`` consecutive tags at ``level`` starting at ``start``.

    Convenience for tests and examples that need a handful of tags without
    carrying a :class:`TagAllocator` around.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    for serial in range(start, start + count):
        yield TagId(level, serial)

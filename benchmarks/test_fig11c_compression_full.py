"""Fig. 11(c) — compression ratio with containment included (Expt 8).

Reproduces: total output size (location + containment events) over the raw
input size for SPIRE level-1 and level-2, as the read rate sweeps
0.5 -> 1.0, with the location-only ratios as the dashed reference.
Expected shape: the same level-1/level-2 trade-off and crossover as
Fig. 11(b); at high read rates the containment events are a small fraction
of the output, so rich location *and* containment information fits in a
few percent of the raw input size.
"""

import pytest

from repro.metrics.sizing import compression_ratio, containment_only, location_only

from benchmarks._shared import Table, get_spire, output_config

READ_RATES = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def run_experiment() -> dict:
    results = {}
    for rate in READ_RATES:
        config = output_config(rate)
        spire1 = get_spire(config, compression_level=1, score=False)
        spire2 = get_spire(config, compression_level=2, score=False)
        raw = spire1.raw_bytes
        results[rate] = {
            "l1_full": compression_ratio(spire1.messages, raw),
            "l2_full": compression_ratio(spire2.messages, raw),
            "l1_location": compression_ratio(location_only(spire1.messages), raw),
            "l2_location": compression_ratio(location_only(spire2.messages), raw),
            "l2_containment": compression_ratio(containment_only(spire2.messages), raw),
        }
    return results


@pytest.mark.benchmark(group="fig11c")
def test_fig11c_full_compression_ratio(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 11(c): compression ratio (location + containment) vs. read rate",
        [
            "read rate",
            "level-1 full",
            "level-2 full",
            "level-1 loc-only",
            "level-2 loc-only",
        ],
    )
    for rate in READ_RATES:
        row = results[rate]
        table.add(rate, row["l1_full"], row["l2_full"], row["l1_location"], row["l2_location"])
    table.show()

    # same trade-off as Fig. 11(b) with containment included
    for rate in (0.8, 0.9, 1.0):
        assert results[rate]["l2_full"] < results[rate]["l1_full"]
    # containment output fits inside the compressed budget at high read
    # rates (the paper's workload, with 20 items/case and hour-long stays,
    # makes it a *small* fraction; our scaled trace has proportionally more
    # containment transitions, so the share is larger but still bounded)
    high = results[1.0]
    assert high["l2_containment"] < high["l2_full"]
    assert high["l2_containment"] < 0.12
    # rich output in a small fraction of the raw input at high read rates
    assert high["l2_full"] < 0.15
    assert high["l1_full"] < 0.35

"""Interval index over compressed event streams.

:class:`EventStreamIndex` replays a well-formed level-1 stream (or a
level-2 stream, decompressed on demand) into per-object interval histories
and answers point and range queries:

* ``location_of(obj, t)`` / ``container_of(obj, t)`` — state at a time;
* ``contents_of(container, t)`` / ``objects_at(place, t)`` — inverses;
* ``top_level_container(obj, t)`` — containment-chain walk;
* ``path(obj)`` — the object's full location trajectory (tracking/path
  queries in the sense of the RFID-database literature);
* ``visitors(place, t1, t2)`` — every object present during a window;
* ``missing_reports(obj)`` — when the object was reported missing.

The index is static: build it from a finished stream, or rebuild
incrementally by calling :meth:`extend` as more messages arrive (messages
must keep arriving in stream order).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, NamedTuple

from repro.compression.decompress import decompress_stream
from repro.events.messages import INFINITY, EventKind, EventMessage
from repro.model.objects import TagId


class Interval(NamedTuple):
    """A value holding over ``[vs, ve)``; ``ve`` is ``inf`` while open."""

    value: object
    vs: int
    ve: float

    def contains(self, t: int) -> bool:
        """Does this interval cover time ``t``?"""
        return self.vs <= t < self.ve


@dataclass
class _ObjectHistory:
    locations: list[Interval]
    containers: list[Interval]
    missing_at: list[int]

    @staticmethod
    def empty() -> "_ObjectHistory":
        """A fresh, empty per-object history."""
        return _ObjectHistory(locations=[], containers=[], missing_at=[])


def _at(intervals: list[Interval], t: int):
    """Value of the interval covering ``t``, or ``None``."""
    index = bisect_right(intervals, t, key=lambda iv: iv.vs) - 1
    if index >= 0 and intervals[index].contains(t):
        return intervals[index].value
    return None


class EventStreamIndex:
    """Queryable index over a compressed event stream."""

    def __init__(
        self,
        messages: Iterable[EventMessage] = (),
        decompress: bool = False,
    ) -> None:
        """Build an index.

        Set ``decompress=True`` when ``messages`` is a level-2 stream: the
        level-2 decompression routine (§V-C) runs first so contained
        objects' location histories are explicit.
        """
        self._objects: dict[TagId, _ObjectHistory] = defaultdict(_ObjectHistory.empty)
        if decompress:
            messages = decompress_stream(list(messages))
        self.extend(messages)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def extend(self, messages: Iterable[EventMessage]) -> None:
        """Apply more messages (in stream order)."""
        for msg in messages:
            history = self._objects[msg.obj]
            if msg.kind is EventKind.START_LOCATION:
                history.locations.append(Interval(msg.place, msg.vs, INFINITY))
            elif msg.kind is EventKind.END_LOCATION:
                self._close(history.locations, msg.place, msg.vs, int(msg.ve), msg)
            elif msg.kind is EventKind.START_CONTAINMENT:
                history.containers.append(Interval(msg.container, msg.vs, INFINITY))
            elif msg.kind is EventKind.END_CONTAINMENT:
                self._close(history.containers, msg.container, msg.vs, int(msg.ve), msg)
            elif msg.kind is EventKind.MISSING:
                history.missing_at.append(msg.vs)

    @staticmethod
    def _close(intervals: list[Interval], value, vs: int, ve: int, msg: EventMessage) -> None:
        if not intervals:
            raise ValueError(f"end message without a matching start: {msg}")
        last = intervals[-1]
        if last.ve != INFINITY or last.value != value or last.vs != vs:
            raise ValueError(f"end message does not match the open interval: {msg}")
        intervals[-1] = Interval(value, vs, ve)

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------

    def objects(self) -> list[TagId]:
        """Every object the stream ever mentioned."""
        return sorted(self._objects)

    def location_of(self, obj: TagId, t: int) -> int | None:
        """Location color of ``obj`` at time ``t`` (``None`` if unreported)."""
        history = self._objects.get(obj)
        if history is None:
            return None
        return _at(history.locations, t)

    def container_of(self, obj: TagId, t: int) -> TagId | None:
        """Direct container of ``obj`` at time ``t``."""
        history = self._objects.get(obj)
        if history is None:
            return None
        return _at(history.containers, t)

    def top_level_container(self, obj: TagId, t: int) -> TagId:
        """Outermost container of ``obj`` at time ``t`` (``obj`` if none)."""
        current = obj
        seen = {obj}
        while True:
            parent = self.container_of(current, t)
            if parent is None or parent in seen:
                return current
            seen.add(parent)
            current = parent

    def is_missing(self, obj: TagId, t: int) -> bool:
        """Was ``obj`` in reported-missing state at time ``t``?

        True when a Missing report precedes ``t`` and no location interval
        covers ``t``.
        """
        history = self._objects.get(obj)
        if history is None:
            return False
        if _at(history.locations, t) is not None:
            return False
        index = bisect_right(history.missing_at, t) - 1
        if index < 0:
            return False
        # missing from the report until the next location interval starts
        report = history.missing_at[index]
        for interval in history.locations:
            if report < interval.vs <= t:
                return False
        return True

    # ------------------------------------------------------------------
    # inverse and range queries
    # ------------------------------------------------------------------

    def contents_of(self, container: TagId, t: int) -> list[TagId]:
        """Objects directly contained in ``container`` at time ``t``."""
        return sorted(
            obj
            for obj, history in self._objects.items()
            if _at(history.containers, t) == container
        )

    def objects_at(self, place: int, t: int) -> list[TagId]:
        """Objects reported at location ``place`` at time ``t``."""
        return sorted(
            obj
            for obj, history in self._objects.items()
            if _at(history.locations, t) == place
        )

    def visitors(self, place: int, t1: int, t2: int) -> list[TagId]:
        """Objects with any location interval at ``place`` overlapping [t1, t2]."""
        out = []
        for obj, history in self._objects.items():
            for interval in history.locations:
                if interval.value == place and interval.vs <= t2 and interval.ve > t1:
                    out.append(obj)
                    break
        return sorted(out)

    def path(self, obj: TagId) -> list[Interval]:
        """The object's full location trajectory, in time order."""
        history = self._objects.get(obj)
        return list(history.locations) if history else []

    def containment_history(self, obj: TagId) -> list[Interval]:
        """All containment intervals of ``obj``, in time order."""
        history = self._objects.get(obj)
        return list(history.containers) if history else []

    def missing_reports(self, obj: TagId) -> list[int]:
        """Epochs at which ``obj`` was reported missing."""
        history = self._objects.get(obj)
        return list(history.missing_at) if history else []

    def containment_tree(self, root: TagId, t: int) -> dict:
        """The containment tree under ``root`` at time ``t``.

        Returns ``{"tag": root, "children": [subtrees...]}``, children in
        tag order.  Use :meth:`top_level_container` first to find the root
        of an arbitrary object's tree.
        """
        children = [
            self.containment_tree(child, t) for child in self.contents_of(root, t)
        ]
        return {"tag": root, "children": children}

    def render_tree(self, root: TagId, t: int, registry=None) -> str:
        """ASCII rendering of the containment tree under ``root`` at ``t``."""

        def place(tag: TagId) -> str:
            color = self.location_of(tag, t)
            if color is None:
                return ""
            name = registry.by_color(color).name if registry is not None else f"L{color}"
            return f"  @ {name}"

        lines: list[str] = []

        def walk(node: dict, prefix: str, is_last: bool, is_root: bool) -> None:
            tag = node["tag"]
            if is_root:
                lines.append(f"{tag}{place(tag)}")
                child_prefix = ""
            else:
                connector = "`-- " if is_last else "|-- "
                lines.append(f"{prefix}{connector}{tag}{place(tag)}")
                child_prefix = prefix + ("    " if is_last else "|   ")
            children = node["children"]
            for index, child in enumerate(children):
                walk(child, child_prefix, index == len(children) - 1, False)

        walk(self.containment_tree(root, t), "", True, True)
        return "\n".join(lines)

    def dwell_time(self, obj: TagId, place: int, horizon: int | None = None) -> int:
        """Total epochs ``obj`` was reported at ``place``.

        Open intervals are truncated at ``horizon`` (required if any
        interval at ``place`` is still open).
        """
        total = 0
        for interval in self.path(obj):
            if interval.value != place:
                continue
            ve = interval.ve
            if ve == INFINITY:
                if horizon is None:
                    raise ValueError(
                        f"open interval at place {place}; pass a horizon to truncate"
                    )
                ve = horizon
            total += max(0, int(ve) - interval.vs)
        return total
